// Package atomicpublish enforces the copy-on-write publish protocol around
// atomic.Pointer[T] fields (the unsorted.Store sorted view, the hot ring's
// slot entries, the DB's degraded state). The protocol has three rules:
//
//  1. The pointer word itself is touched only through Load / Store / Swap /
//     CompareAndSwap. Copying the atomic by value or overwriting it with an
//     assignment tears the publish: the copy is a fresh, unsynchronized
//     word, and the race detector only notices if a reader races the exact
//     interleaving.
//  2. A value PUBLISHED via Store/Swap/CompareAndSwap must be complete
//     before the call — any mutation after the publish is visible to
//     readers mid-change. This is the PR 8 pre-fix bug shape: a snapshot
//     state published before its sequence field was final, so a concurrent
//     reader observed an out-of-order sequence.
//  3. A value obtained from Load must never be mutated: it is shared with
//     every other reader. Copy-on-write means clone-then-modify-then-Store,
//     never modify-in-place.
//
// "Mutation" is an assignment THROUGH the value (v.f = x, v.s[i] = y,
// *v = z) — rebinding the variable is fine, and calling a method is not
// flagged (methods on atomic-typed FIELDS of a published value, like the
// hot ring entry's freq, are the sanctioned post-publish channel; COW
// builders like View.WithTable return fresh values). Passing a published
// value to a same-package helper that mutates its parameter is caught
// through fixed-point parameter-mutation summaries over the call graph
// (internal/analysis/callgraph), at any forwarding depth; cross-package
// callees are assumed well-behaved.
package atomicpublish

import (
	"go/ast"
	"go/token"
	"go/types"

	"unikv/internal/analysis"
	"unikv/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicpublish",
	Doc: "enforce copy-on-write discipline around atomic.Pointer fields: no " +
		"non-atomic access to the pointer word, no mutation of a value after " +
		"it is published via Store/Swap, no mutation of a value obtained from " +
		"Load",
	Run: run,
}

func init() { analysis.RegisterCheck(Analyzer.Name) }

// atomicMethods are the only selectors allowed on an atomic.Pointer value.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "CompareAndSwap": true,
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[T] (the value
// type; *atomic.Pointer aliases the same word and stays atomic, so pointers
// to it are not restricted).
func isAtomicPointer(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// mutSummary records which parameters a function mutates through — directly
// or by forwarding to another mutating same-package function — iterated to
// a fixed point.
type mutSummary map[int]bool

func mutEqual(a, b mutSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func run(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass)

	mutates := callgraph.Fixpoint(g, mutEqual, func(f *callgraph.Func, get func(*callgraph.Func) mutSummary) mutSummary {
		s := mutSummary{}
		params := paramObjs(f)
		mark := func(e ast.Expr) {
			if obj := mutationRoot(pass.TypesInfo, e); obj != nil {
				if i, ok := params[obj]; ok {
					s[i] = true
				}
			}
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(n.X)
			case *ast.CallExpr:
				callee := g.ByObj[callgraph.StaticCallee(pass.TypesInfo, n)]
				if callee == nil {
					return true
				}
				for argIdx := range get(callee) {
					if argIdx >= len(n.Args) {
						continue
					}
					if obj := rootObj(pass.TypesInfo, n.Args[argIdx]); obj != nil {
						if i, ok := params[obj]; ok {
							s[i] = true
						}
					}
				}
			}
			return true
		})
		return s
	})

	for _, f := range g.Funcs {
		if f.TestFile {
			continue
		}
		checkFunc(pass, g, f, mutates)
	}
	return nil, nil
}

// paramObjs maps f's pointer-typed parameter objects to their indices
// (mutating a by-value parameter cannot escape the callee).
func paramObjs(f *callgraph.Func) map[types.Object]int {
	out := map[types.Object]int{}
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok {
		return out
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		switch p.Type().Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map:
			out[p] = i
		}
	}
	return out
}

// rootObj resolves the base identifier of a selector/index/star/paren chain.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mutationRoot is rootObj restricted to LHS expressions that actually write
// THROUGH the root (at least one selector/index/deref level): `v = x`
// rebinds and is fine; `v.f = x` mutates what v points at.
func mutationRoot(info *types.Info, e ast.Expr) types.Object {
	switch ast.Unparen(e).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return rootObj(info, e)
	}
	return nil
}

// published is one variable bound to a value shared with readers.
type published struct {
	obj types.Object
	pos token.Pos // the Load/Store/Swap that shared it
	how string    // "published via X.Store" or "loaded from X.Load"
}

func checkFunc(pass *analysis.Pass, g *callgraph.Graph, f *callgraph.Func, mutates map[*callgraph.Func]mutSummary) {
	info := pass.TypesInfo

	// Pass 1 — rule 1, and collect the published/loaded variables.
	var pubs []published
	var stack []ast.Node
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)

		// Rule 1: a value of type atomic.Pointer may only appear as the
		// receiver of Load/Store/Swap/CompareAndSwap (or under &, which
		// preserves atomicity).
		if e, ok := n.(ast.Expr); ok {
			// IsValue filters out TYPE expressions (make([]atomic.Pointer[T],
			// n), composite-literal types), which carry the type too. A
			// composite literal is a fresh, unshared value — the sink it
			// flows into is judged on its own.
			_, freshLit := e.(*ast.CompositeLit)
			if tv, ok := info.Types[e]; ok && tv.IsValue() && !freshLit && isAtomicPointer(tv.Type) {
				if !sanctionedContext(stack) {
					pass.Reportf(e.Pos(),
						"non-atomic access to atomic.Pointer value %s: only Load/Store/Swap/CompareAndSwap may touch the word — copying or reassigning it tears the publish protocol",
						exprString(e))
				}
			}
		}

		// Collect publishes: X.Store(v) / X.Swap(v) / X.CompareAndSwap(_, v)
		// with X an atomic.Pointer and v an identifier.
		if call, ok := n.(*ast.CallExpr); ok {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !atomicMethods[sel.Sel.Name] {
				return true
			}
			if tv, ok := info.Types[sel.X]; !ok || !isAtomicPointer(tv.Type) {
				return true
			}
			var arg ast.Expr
			switch sel.Sel.Name {
			case "Store", "Swap":
				if len(call.Args) == 1 {
					arg = call.Args[0]
				}
			case "CompareAndSwap":
				if len(call.Args) == 2 {
					arg = call.Args[1]
				}
			}
			if arg == nil {
				return true
			}
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					pubs = append(pubs, published{
						obj: obj, pos: call.Pos(),
						how: "published via " + exprString(sel.X) + "." + sel.Sel.Name,
					})
				}
			}
		}

		// Collect loads: v := X.Load() (also v, ok := ...; v = X.Load()).
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Load" {
				return true
			}
			if tv, ok := info.Types[sel.X]; !ok || !isAtomicPointer(tv.Type) {
				return true
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					pubs = append(pubs, published{
						obj: obj, pos: call.Pos(),
						how: "loaded from " + exprString(sel.X) + ".Load",
					})
				}
			}
		}
		return true
	})

	if len(pubs) == 0 {
		return
	}
	shared := func(obj types.Object, after token.Pos) *published {
		for i := range pubs {
			if pubs[i].obj == obj && pubs[i].pos <= after {
				return &pubs[i]
			}
		}
		return nil
	}

	// Pass 2 — rules 2 and 3: mutations through a published variable after
	// the sharing point (source order; a rebind between does not clear the
	// taint — the checker is deliberately strict there).
	report := func(pos token.Pos, p *published, via string) {
		pass.Reportf(pos,
			"mutation of %s, %s at %s%s: the value is shared with concurrent readers — copy-on-write requires building a fresh value and re-publishing it",
			p.obj.Name(), p.how, pass.Fset.Position(p.pos), via)
	}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj := mutationRoot(info, lhs); obj != nil {
					if p := shared(obj, lhs.Pos()); p != nil {
						report(lhs.Pos(), p, "")
					}
				}
			}
		case *ast.IncDecStmt:
			if obj := mutationRoot(info, n.X); obj != nil {
				if p := shared(obj, n.Pos()); p != nil {
					report(n.Pos(), p, "")
				}
			}
		case *ast.CallExpr:
			callee := g.ByObj[callgraph.StaticCallee(info, n)]
			if callee == nil {
				return true
			}
			for argIdx := range mutates[callee] {
				if argIdx >= len(n.Args) {
					continue
				}
				id, ok := ast.Unparen(n.Args[argIdx]).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := info.Uses[id]; obj != nil {
					if p := shared(obj, n.Pos()); p != nil {
						report(n.Pos(), p, " (call to "+callee.Name+" mutates this argument)")
					}
				}
			}
		}
		return true
	})
}

// sanctionedContext inspects the ancestor chain of an atomic.Pointer-typed
// expression (stack ends with the expression itself) and reports whether
// its immediate use keeps the access atomic: selecting one of the atomic
// methods, taking its address, or merely being the X of a selector/index
// step on the way to one (those parents carry their own type and are
// re-checked independently).
func sanctionedContext(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	e := stack[len(stack)-1].(ast.Expr)
	switch p := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		// x.view.Store → the atomic is the X of a method selector.
		return p.X == e && atomicMethods[p.Sel.Name]
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.ParenExpr:
		return true // judged again as the paren's own context
	}
	return false
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "<expr>"
}
