// Package lintutil holds the small helpers shared by the unikvlint
// checkers: the restricted-package predicate, test-file detection, and
// static-callee resolution for the one-level call-graph summaries.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// storePackages are the storage-layer packages whose I/O must go through
// vfs.FS and whose publish points must SyncDir (ISSUE 4; DESIGN.md §5c).
var storePackages = map[string]bool{
	"core":      true,
	"manifest":  true,
	"vlog":      true,
	"wal":       true,
	"sstable":   true,
	"unsorted":  true,
	"sorted":    true,
	"hashstore": true,
}

// RestrictedStorePackage reports whether the import path names one of the
// storage packages (internal/{core,manifest,vlog,wal,sstable,unsorted,
// sorted,hashstore} under any module prefix, subpackages included).
// internal/vfs itself is deliberately absent: it is the one place allowed
// to touch package os.
func RestrictedStorePackage(path string) bool {
	segs := strings.Split(path, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && storePackages[segs[i+1]] {
			return true
		}
	}
	return false
}

// TestFile reports whether the file is a _test.go file.
func TestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// StaticCallee resolves call to the package-level function or method it
// statically invokes, or nil for dynamic calls (function values, interface
// methods resolve to the interface method object — still a *types.Func).
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Deref strips every pointer layer from t.
func Deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// NamedName returns the declared name of t (pointers stripped), or "".
func NamedName(t types.Type) string {
	if n, ok := Deref(t).(interface{ Obj() *types.TypeName }); ok {
		return n.Obj().Name()
	}
	return ""
}

// HasMethod reports whether t's method set (value or pointer receiver)
// contains a method with the given name.
func HasMethod(t types.Type, name string) bool {
	if ms := types.NewMethodSet(t); lookupMethod(ms, name) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return lookupMethod(types.NewMethodSet(types.NewPointer(t)), name)
	}
	return false
}

func lookupMethod(ms *types.MethodSet, name string) bool {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// ExprString renders a selector/identifier chain ("db.router", "p.mu") for
// diagnostics and lock/unlock pairing; other expression forms render as a
// placeholder that never pairs.
func ExprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return ExprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	default:
		return "<expr>"
	}
}
