package lintutil_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"unikv/internal/analysis"
	"unikv/internal/analysis/unikvlint/lintutil"
)

func TestRestrictedStorePackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"unikv/internal/core", true},
		{"unikv/internal/vlog", true},
		{"unikv/internal/sstable/block", true}, // subpackages included
		{"internal/hashstore", true},           // any module prefix
		{"unikv/internal/vfs", false},          // the one package allowed to touch os
		{"unikv/internal/analysis", false},
		{"unikv/cmd/unikv", false},
		{"core", false}, // "internal" segment required
		{"unikv/core/internal", false},
	}
	for _, tc := range cases {
		if got := lintutil.RestrictedStorePackage(tc.path); got != tc.want {
			t.Errorf("RestrictedStorePackage(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestTestFile(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n"
	plain, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	test, err := parser.ParseFile(fset, "p_test.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lintutil.TestFile(fset, plain) {
		t.Error("TestFile(p.go) = true")
	}
	if !lintutil.TestFile(fset, test) {
		t.Error("TestFile(p_test.go) = false")
	}
}

const typesSrc = `package p

type T struct{}

func (t T) Value()    {}
func (t *T) Pointer() {}

type I interface{ Meth() }

func free()            {}
func run(f func(), i I) {
	free()
	T{}.Value()
	f()
	i.Meth()
}
`

func loadTypes(t *testing.T) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", typesSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, pkg, info
}

func TestTypeHelpers(t *testing.T) {
	_, _, pkg, _ := loadTypes(t)
	T := pkg.Scope().Lookup("T").Type()
	ptrT := types.NewPointer(T)
	ptrPtrT := types.NewPointer(ptrT)

	if got := lintutil.Deref(ptrPtrT); got != T {
		t.Errorf("Deref(**T) = %v, want %v", got, T)
	}
	if got := lintutil.NamedName(ptrT); got != "T" {
		t.Errorf("NamedName(*T) = %q, want T", got)
	}
	if got := lintutil.NamedName(types.Typ[types.Int]); got != "" {
		t.Errorf("NamedName(int) = %q, want empty", got)
	}

	// HasMethod sees pointer-receiver methods from the value type too.
	for _, name := range []string{"Value", "Pointer"} {
		if !lintutil.HasMethod(T, name) {
			t.Errorf("HasMethod(T, %s) = false", name)
		}
		if !lintutil.HasMethod(ptrT, name) {
			t.Errorf("HasMethod(*T, %s) = false", name)
		}
	}
	if lintutil.HasMethod(T, "Missing") {
		t.Error("HasMethod(T, Missing) = true")
	}
}

func TestStaticCallee(t *testing.T) {
	_, f, _, info := loadTypes(t)
	got := map[string]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var label string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			label = fun.Name
		case *ast.SelectorExpr:
			label = fun.Sel.Name
		default:
			return true // T{}.Value()'s inner composite etc.
		}
		if fn := lintutil.StaticCallee(info, call); fn != nil {
			got[label] = fn.Name()
		} else {
			got[label] = "<nil>"
		}
		return true
	})
	want := map[string]string{
		"free":  "free",
		"Value": "Value",
		"f":     "<nil>", // function value: dynamic
		"Meth":  "Meth",  // interface method object is still a *types.Func
	}
	for label, fn := range want {
		if got[label] != fn {
			t.Errorf("StaticCallee at %s() = %q, want %q", label, got[label], fn)
		}
	}
}

func TestExprString(t *testing.T) {
	mustExpr := func(s string) ast.Expr {
		e, err := parser.ParseExpr(s)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	cases := []struct{ src, want string }{
		{"db", "db"},
		{"db.router.mu", "db.router.mu"},
		{"(p.mu)", "p.mu"},
		{"db.part(i).mu", "db.part(...).mu"},
		{"shards[i].mu", "shards[...].mu"},
		{"*p", "<expr>"},
	}
	for _, tc := range cases {
		if got := lintutil.ExprString(mustExpr(tc.src)); got != tc.want {
			t.Errorf("ExprString(%s) = %q, want %q", tc.src, got, tc.want)
		}
	}
}
