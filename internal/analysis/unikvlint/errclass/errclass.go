// Package errclass enforces error-class discipline on the background-job
// path. The scheduler's retry policy (internal/core/scheduler.go) is keyed
// entirely off Classify, and Classify defaults UNKNOWN errors to transient:
// a fresh errors.New("checksum mismatch") constructed four frames below
// runWithRetry is retried with backoff — re-reading the same corrupt bytes
// — instead of tripping degraded mode immediately. Every error constructed
// on a path reachable from runWithRetry must therefore carry its class:
// wrapped by WithClass/classified at the construction site, or built with
// a %w verb so a classified sentinel (codec.ErrCorrupt and friends) stays
// visible to errors.Is/As.
//
// Reachability is computed over the package call graph
// (internal/analysis/callgraph) from every function named runWithRetry —
// the whole job tree (run, backgroundFlush/Merge/GC, splitPartition, their
// helpers) is on the path, at any depth. The check is intra-package like
// the rest of the framework: errors constructed in callee PACKAGES
// (sstable, vlog, ...) are out of reach, which is fine — those packages
// export the sentinels Classify already recognizes.
package errclass

import (
	"go/ast"
	"go/token"
	"strings"

	"unikv/internal/analysis"
	"unikv/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc: "forbid unclassified error construction (errors.New, fmt.Errorf " +
		"without %w) on paths reachable from runWithRetry: Classify defaults " +
		"unknown errors to transient, so an unclassified corruption error " +
		"would be retried instead of tripping degraded mode",
	Run: run,
}

func init() { analysis.RegisterCheck(Analyzer.Name) }

func run(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass)
	var roots []*callgraph.Func
	for _, f := range g.Funcs {
		if f.Name == "runWithRetry" && !f.TestFile {
			roots = append(roots, f)
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}
	reach := callgraph.Reachable(roots...)

	for _, f := range g.Funcs {
		if !reach[f] || f.TestFile {
			continue
		}
		checkFunc(pass, f)
	}
	return nil, nil
}

// checkFunc flags unclassified constructions in f's body. The walk tracks
// the enclosing call so a construction that is immediately an argument to
// WithClass or classified is exempt.
func checkFunc(pass *analysis.Pass, f *callgraph.Func) {
	var stack []ast.Node
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := constructionKind(pass, call)
		if kind == "" {
			return true
		}
		if wrappedByClassifier(pass, stack, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"unclassified %s on the background-job path (%s is reachable from runWithRetry): "+
				"Classify defaults unknown errors to transient and the scheduler would retry it — "+
				"wrap with WithClass/classified or %%w a classified sentinel",
			kind, f.Name)
		return true
	})
}

// constructionKind reports how call builds a classless error: "errors.New"
// or "fmt.Errorf without %w" — or "" when it does not. fmt.Errorf with a
// %w verb inherits the wrapped error's class through errors.Is/As, and a
// non-literal format string is given the benefit of the doubt.
func constructionKind(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "errors.New":
		return "errors.New"
	case "fmt.Errorf":
		if len(call.Args) == 0 {
			return ""
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return "" // dynamic format: cannot prove it lacks %w
		}
		if strings.Contains(lit.Value, "%w") {
			return ""
		}
		return "fmt.Errorf without %w"
	}
	return ""
}

// wrappedByClassifier reports whether call appears directly as an argument
// of a WithClass or classified call (stack is the ancestor chain, call
// last).
func wrappedByClassifier(pass *analysis.Pass, stack []ast.Node, call *ast.CallExpr) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		outer, ok := stack[i].(*ast.CallExpr)
		if !ok {
			// Only unwrap expression wrappers between the construction and
			// the classifier (parens); any other node breaks the chain.
			if _, ok := stack[i].(*ast.ParenExpr); ok {
				continue
			}
			return false
		}
		switch calleeName(outer) {
		case "WithClass", "classified":
			return true
		}
		return false
	}
	return false
}

func calleeName(c *ast.CallExpr) string {
	switch fun := ast.Unparen(c.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
