package errclass_test

import (
	"testing"

	"unikv/internal/analysis/analysistest"
	"unikv/internal/analysis/unikvlint/errclass"
)

func TestErrClass(t *testing.T) {
	analysistest.Run(t, "testdata", errclass.Analyzer, "internal/core")
}
