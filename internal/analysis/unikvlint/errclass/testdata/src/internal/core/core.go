// Fixture: errors constructed on the background-job path (reachable from
// runWithRetry) must carry their class — Classify defaults unknown errors
// to transient, and a transient classification means the scheduler RETRIES
// the job, which for a corruption error re-reads the same wrong bytes.
package core

import (
	"errors"
	"fmt"
)

type ErrorClass uint8

const (
	ClassTransient ErrorClass = iota + 1
	ClassCorruption
)

type ClassifiedError struct {
	Class ErrorClass
	Err   error
}

func (e *ClassifiedError) Error() string { return e.Err.Error() }
func (e *ClassifiedError) Unwrap() error { return e.Err }

func WithClass(class ErrorClass, err error) error {
	if err == nil {
		return nil
	}
	return &ClassifiedError{Class: class, Err: err}
}

func classified(err error) error { return WithClass(Classify(err), err) }

var errSegmentCorrupt = errors.New("segment corrupt") // sentinel: outside any function, never flagged

func Classify(err error) ErrorClass {
	if errors.Is(err, errSegmentCorrupt) {
		return ClassCorruption
	}
	return ClassTransient
}

type sched struct {
	retries int
}

func (s *sched) runWithRetry() error {
	for attempt := 0; ; attempt++ {
		err := s.run()
		if err == nil {
			return nil
		}
		if Classify(err) != ClassTransient || attempt >= s.retries {
			return err
		}
	}
}

// run → backgroundGC → rewriteLog: the construction sites live three call
// edges below the retry loop; Reachable makes the depth irrelevant.
func (s *sched) run() error {
	return s.backgroundGC()
}

func (s *sched) backgroundGC() error {
	if bad() {
		return s.flakyProbe()
	}
	return s.rewriteLog(7)
}

func bad() bool { return false }

func (s *sched) rewriteLog(n int) error {
	if bad() {
		return errors.New("checksum mismatch") // want `unclassified errors\.New on the background-job path`
	}
	if bad() {
		return fmt.Errorf("segment %d torn", n) // want `unclassified fmt\.Errorf without %w on the background-job path`
	}
	if bad() {
		// %w keeps the classified sentinel visible to errors.Is: clean.
		return fmt.Errorf("rewrite segment %d: %w", n, errSegmentCorrupt)
	}
	if bad() {
		// Explicit class at the construction site: clean.
		return WithClass(ClassCorruption, errors.New("tail truncated"))
	}
	if bad() {
		// Derived class stamped on: clean.
		return classified(errors.New("mystery"))
	}
	return nil
}

// Not reachable from runWithRetry: foreground construction is the caller's
// problem (the write path classifies at its own boundary).
func (s *sched) foregroundCheck() error {
	return errors.New("misuse: nil key")
}

// The escape hatch, for errors that are transient by construction.
func (s *sched) flakyProbe() error {
	//unikv:allow(errclass) probe errors are transient by definition
	return errors.New("probe timeout")
}
