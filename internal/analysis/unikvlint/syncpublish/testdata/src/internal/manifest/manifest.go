// Fixture: publish points (Create/Rename) must reach a SyncDir — in the
// function's transitive callee closure or a covering caller chain, at any
// depth — or the published name can vanish on power loss.
package manifest

import "vfs"

type store struct {
	fs  vfs.FS
	dir string
}

// Create followed by SyncDir in the same function: durable, no diagnostic.
func (s *store) writeSynced(name string) error {
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fs.SyncDir(s.dir)
}

// Create with no SyncDir anywhere in reach.
func (s *store) writeUnsynced(name string) error {
	f, err := s.fs.Create(name) // want `Create in .* never published`
	if err != nil {
		return err
	}
	return f.Close()
}

// The PR3 shape: CURRENT is swapped via tmp-file + rename but the directory
// entry itself is never synced, so the swap may not survive a crash.
func (s *store) swapCurrentUnsynced() error {
	f, err := s.fs.Create("CURRENT.tmp") // want `Create in .* never published`
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fs.Rename("CURRENT.tmp", "CURRENT") // want `Rename in .* never published`
}

// Same swap done right.
func (s *store) swapCurrentSynced() error {
	f, err := s.fs.Create("CURRENT.tmp")
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename("CURRENT.tmp", "CURRENT"); err != nil {
		return err
	}
	return s.fs.SyncDir(s.dir)
}

// Helper creates; its caller owns the SyncDir. The one-level caller summary
// keeps this quiet.
func (s *store) createHelper(name string) error {
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	return f.Close()
}

func (s *store) publishViaHelper(name string) error {
	if err := s.createHelper(name); err != nil {
		return err
	}
	return s.fs.SyncDir(s.dir)
}

// The sync can also live in a direct callee.
func (s *store) syncIt() error {
	return s.fs.SyncDir(s.dir)
}

func (s *store) createThenDelegateSync(name string) error {
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.syncIt()
}

// Scratch files that are deleted before the function returns don't need
// durability; annotate instead of restructuring.
func (s *store) scratch(name string) error {
	//unikv:allow(syncpublish) temp file is removed before return
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	return f.Close()
}

// ---------------------------------------------------------------------------
// Fixed-point depth: PR 4's one-level summaries saw exactly one call edge in
// each direction; the chains below needed annotations then and are clean now.

// The build side of a build-then-commit split, two helpers below the commit.
func (s *store) buildDeep(name string) error {
	f, err := s.fs.Create(name) // covered: commitDeep's chain publishes
	if err != nil {
		return err
	}
	return f.Close()
}

func (s *store) buildMiddle(name string) error {
	return s.buildDeep(name)
}

func (s *store) commitDeep(name string) error {
	if err := s.buildMiddle(name); err != nil {
		return err
	}
	return s.fs.SyncDir(s.dir)
}

// The SyncDir can also live two callees below the creating function.
func (s *store) syncLeaf() error {
	return s.fs.SyncDir(s.dir)
}

func (s *store) syncForwarder() error {
	return s.syncLeaf()
}

func (s *store) createThenDeepSync(name string) error {
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.syncForwarder()
}

// An uncovered deep build chain still reports: no caller of orphanCommit
// publishes, and neither does its closure.
func (s *store) orphanBuild(name string) error {
	f, err := s.fs.Create(name) // want `Create in .* never published`
	if err != nil {
		return err
	}
	return f.Close()
}

func (s *store) orphanCommit(name string) error {
	return s.orphanBuild(name)
}
