// Fixture: minimal shape of the real vfs.FS interface. The analyzer keys on
// the receiver having a SyncDir method, so this local copy triggers it.
package vfs

type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type FS interface {
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	SyncDir(dir string) error
}
