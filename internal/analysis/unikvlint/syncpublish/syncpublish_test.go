package syncpublish_test

import (
	"testing"

	"unikv/internal/analysis/analysistest"
	"unikv/internal/analysis/unikvlint/syncpublish"
)

func TestSyncPublish(t *testing.T) {
	analysistest.Run(t, "testdata", syncpublish.Analyzer, "internal/manifest")
}
