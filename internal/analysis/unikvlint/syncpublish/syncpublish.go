// Package syncpublish enforces the publish protocol of DESIGN.md §5c in
// the storage packages: a file Create or Rename on a vfs.FS only becomes
// durable once the containing directory is fsynced, so every function that
// creates or renames through the FS must reach a SyncDir — in its own
// transitive callee closure (fixed-point summaries over the package call
// graph, internal/analysis/callgraph), or in a caller chain whose closure
// publishes (the build-then-commit split, at any depth). PR 3 found every
// publish point in the tree missing this; PR 4's checker saw one call
// level in each direction; the fixed-point engine removes the horizon, so
// a commit chain three helpers deep no longer needs an annotation.
package syncpublish

import (
	"go/ast"
	"go/token"

	"unikv/internal/analysis"
	"unikv/internal/analysis/callgraph"
	"unikv/internal/analysis/unikvlint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "syncpublish",
	Doc: "require every vfs.FS Create/Rename in storage packages to be " +
		"published with a SyncDir in the function's transitive callee closure " +
		"or a covering caller chain (crash durability of directory entries, " +
		"DESIGN.md §5c)",
	Run: run,
}

func init() { analysis.RegisterCheck(Analyzer.Name) }

// funcInfo summarizes one function's direct publish behavior.
type funcInfo struct {
	creates []creation // unsynced-at-risk Create/Rename call sites
	syncs   bool       // calls SyncDir directly
}

type creation struct {
	pos  token.Pos
	verb string // "Create" or "Rename"
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.RestrictedStorePackage(pass.Pkg.Path()) {
		return nil, nil
	}

	g := callgraph.Build(pass)
	infos := map[*callgraph.Func]*funcInfo{}
	for _, f := range g.Funcs {
		if f.TestFile {
			continue
		}
		infos[f] = summarize(pass, f.Decl.Body)
	}

	// Fixed point 1 — callee closure: the function or anything it
	// transitively calls reaches a SyncDir.
	syncs := callgraph.Fixpoint(g, func(a, b bool) bool { return a == b },
		func(f *callgraph.Func, get func(*callgraph.Func) bool) bool {
			info := infos[f]
			if info == nil {
				return false
			}
			if info.syncs {
				return true
			}
			for _, c := range f.Callees {
				if get(c) {
					return true
				}
			}
			return false
		})

	// Fixed point 2 — caller coverage: a function is covered when some
	// caller chain above it reaches a SyncDir closure (the commit side of
	// a build-then-commit split publishes for the build side). Coverage
	// propagates down call edges from every sync-reaching function.
	covered := map[*callgraph.Func]bool{}
	var stack []*callgraph.Func
	for _, f := range g.Funcs {
		if syncs[f] {
			covered[f] = true
			stack = append(stack, f)
		}
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range f.Callees {
			if !covered[c] {
				covered[c] = true
				stack = append(stack, c)
			}
		}
	}

	for _, f := range g.Funcs {
		info := infos[f]
		if info == nil || len(info.creates) == 0 || covered[f] {
			continue
		}
		for _, cr := range info.creates {
			pass.Reportf(cr.pos,
				"fs.%s in %s is never published: no SyncDir in this function, its transitive callees, or any caller chain — the directory entry is lost on crash (DESIGN.md §5c)",
				cr.verb, f.Name)
		}
	}
	return nil, nil
}

// summarize records the FS Create/Rename calls and SyncDir calls of one
// function body. Function literals inside the body count toward it: a
// closure's publish runs under the same logical operation.
func summarize(pass *analysis.Pass, body *ast.BlockStmt) *funcInfo {
	info := &funcInfo{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Create" && name != "Rename" && name != "SyncDir" {
			return true
		}
		// Only calls on a value whose method set also carries SyncDir —
		// the vfs.FS shape — are publish-protocol operations; Create on a
		// bytes.Buffer-like type is not.
		recv := pass.TypesInfo.Types[sel.X].Type
		if recv == nil || !lintutil.HasMethod(recv, "SyncDir") {
			return true
		}
		if name == "SyncDir" {
			info.syncs = true
		} else {
			info.creates = append(info.creates, creation{pos: call.Pos(), verb: name})
		}
		return true
	})
	return info
}
