// Package syncpublish enforces the publish protocol of DESIGN.md §5c in
// the storage packages: a file Create or Rename on a vfs.FS only becomes
// durable once the containing directory is fsynced, so every function that
// creates or renames through the FS must reach a SyncDir — itself, in a
// direct same-package callee, or in a direct same-package caller (the
// build-then-commit split). PR 3 found every publish point in the tree
// missing this; the check keeps the class extinct.
package syncpublish

import (
	"go/ast"
	"go/token"
	"go/types"

	"unikv/internal/analysis"
	"unikv/internal/analysis/unikvlint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "syncpublish",
	Doc: "require every vfs.FS Create/Rename in storage packages to be " +
		"published with a SyncDir in the same function, a direct callee, or " +
		"a direct caller (crash durability of directory entries, DESIGN.md §5c)",
	Run: run,
}

// funcInfo summarizes one function's publish behavior.
type funcInfo struct {
	creates []creation    // unsynced-at-risk Create/Rename call sites
	syncs   bool          // calls SyncDir directly
	callees []*types.Func // same-package static callees
}

type creation struct {
	pos  token.Pos
	verb string // "Create" or "Rename"
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.RestrictedStorePackage(pass.Pkg.Path()) {
		return nil, nil
	}

	infos := map[*types.Func]*funcInfo{}
	var order []*types.Func
	for _, f := range pass.Files {
		if lintutil.TestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := summarize(pass, fd.Body)
			infos[fn] = info
			order = append(order, fn)
		}
	}

	// syncsNear: the function or one of its direct same-package callees
	// calls SyncDir.
	syncsNear := func(fn *types.Func) bool {
		info := infos[fn]
		if info == nil {
			return false
		}
		if info.syncs {
			return true
		}
		for _, c := range info.callees {
			if ci := infos[c]; ci != nil && ci.syncs {
				return true
			}
		}
		return false
	}

	// coveredByCaller: some same-package function calls fn and itself
	// reaches a SyncDir (build-then-commit: the commit side publishes).
	coveredByCaller := func(fn *types.Func) bool {
		for g, gi := range infos {
			for _, c := range gi.callees {
				if c == fn && syncsNear(g) {
					return true
				}
			}
		}
		return false
	}

	for _, fn := range order {
		info := infos[fn]
		if len(info.creates) == 0 || syncsNear(fn) || coveredByCaller(fn) {
			continue
		}
		for _, cr := range info.creates {
			pass.Reportf(cr.pos,
				"fs.%s in %s is never published: no SyncDir in this function, its direct callees, or its callers — the directory entry is lost on crash (DESIGN.md §5c)",
				cr.verb, fn.Name())
		}
	}
	return nil, nil
}

// summarize records the FS Create/Rename calls, SyncDir calls, and
// same-package callees of one function body. Function literals inside the
// body count toward it: a closure's publish runs under the same logical
// operation.
func summarize(pass *analysis.Pass, body *ast.BlockStmt) *funcInfo {
	info := &funcInfo{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := lintutil.StaticCallee(pass.TypesInfo, call); fn != nil && fn.Pkg() == pass.Pkg {
			info.callees = append(info.callees, fn)
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Create" && name != "Rename" && name != "SyncDir" {
			return true
		}
		// Only calls on a value whose method set also carries SyncDir —
		// the vfs.FS shape — are publish-protocol operations; Create on a
		// bytes.Buffer-like type is not.
		recv := pass.TypesInfo.Types[sel.X].Type
		if recv == nil || !lintutil.HasMethod(recv, "SyncDir") {
			return true
		}
		if name == "SyncDir" {
			info.syncs = true
		} else {
			info.creates = append(info.creates, creation{pos: call.Pos(), verb: name})
		}
		return true
	})
	return info
}
