// Fixture: acquired references (Reader.Ref, retainLogs, vlog Pin,
// NewSnapshot) must be released on every error path. Stand-ins mirror the
// engine's shapes: classification is by method-set shape and name, so local
// types with Ref/Close (etc.) behave like the real ones.
package core

import "errors"

type Reader struct{ refs int }

func (r *Reader) Ref()         { r.refs++ }
func (r *Reader) Close() error { r.refs--; return nil }

type Table struct{ Reader *Reader }

type Manager struct{ pins int }

func (m *Manager) Pin() uint64     { m.pins++; return 0 }
func (m *Manager) Unpin(tok uint64) { m.pins-- }

type Snapshot struct{ db *DB }

func (s *Snapshot) Close() error { s.db.releaseLogs(nil); return nil }

type DB struct {
	vl     *Manager
	tables []*Table
	logs   map[uint32]int
}

func (db *DB) retainLogs(nums []uint32)  {}
func (db *DB) releaseLogs(nums []uint32) {}

func (db *DB) NewSnapshot() (*Snapshot, error) {
	db.retainLogs(nil)
	return &Snapshot{db: db}, nil
}

func (db *DB) step() error { return errors.New("boom") }

// ---------------------------------------------------------------------------
// Reader.Ref / Close.

// The motivating bug: the ref leaks when the step between acquire and
// release fails — the reader's refcount never drops, so vlog GC and table
// retirement are blocked forever.
func (db *DB) pinLeaky(t *Table) error {
	t.Reader.Ref()
	if err := db.step(); err != nil {
		return err // want `error return leaks reader ref t\.Reader\.Ref\(\)`
	}
	return t.Reader.Close()
}

// Releasing before the error return is clean.
func (db *DB) pinReleased(t *Table) error {
	t.Reader.Ref()
	if err := db.step(); err != nil {
		t.Reader.Close()
		return err
	}
	return t.Reader.Close()
}

// A deferred release protects every path.
func (db *DB) pinDeferred(t *Table) error {
	t.Reader.Ref()
	defer t.Reader.Close()
	if err := db.step(); err != nil {
		return err
	}
	return nil
}

// Success returns transfer ownership (the NewSnapshot/gcTables shape) and
// are never flagged.
func (db *DB) pinTransfer(t *Table) error {
	t.Reader.Ref()
	db.tables = append(db.tables, t)
	return nil
}

// ---------------------------------------------------------------------------
// retainLogs / releaseLogs pair by kind, not by argument: the engine
// retains one set and releases another (gcTables).

func (db *DB) retainLeaky(nums []uint32) error {
	db.retainLogs(nums)
	if err := db.step(); err != nil {
		return err // want `error return leaks log retention \(retainLogs\)`
	}
	return nil
}

func (db *DB) retainSwapped(add, drop []uint32) error {
	db.retainLogs(add)
	db.releaseLogs(drop)
	if err := db.step(); err != nil {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// The vlog append-window pin (the mergeTables shape).

func (db *DB) mergeClean() error {
	pin := db.vl.Pin()
	defer db.vl.Unpin(pin)
	if err := db.step(); err != nil {
		return err
	}
	return nil
}

func (db *DB) mergeLeaky() error {
	pin := db.vl.Pin()
	if err := db.step(); err != nil {
		return err // want `error return leaks vlog append pin`
	}
	db.vl.Unpin(pin)
	return nil
}

// ---------------------------------------------------------------------------
// Snapshot handles. The error return guarding the constructor itself is
// exempt — a failed NewSnapshot acquired nothing — but later error returns
// must Close the handle.

func (db *DB) backupClean() error {
	s, err := db.NewSnapshot()
	if err != nil {
		return err
	}
	defer s.Close()
	if err := db.step(); err != nil {
		return err
	}
	return nil
}

func (db *DB) backupLeaky() error {
	s, err := db.NewSnapshot()
	if err != nil {
		return err
	}
	if err := db.step(); err != nil {
		return err // want `error return leaks snapshot s`
	}
	return s.Close()
}

// ---------------------------------------------------------------------------
// Interprocedural: a void helper's acquisitions belong to its caller, and a
// releasing helper discharges them — at any depth via the fixed-point
// summaries. (NewSnapshot's own Refs do NOT travel: it returns the handle
// that owns them.)

func (db *DB) pinAll() {
	for _, t := range db.tables {
		t.Reader.Ref()
	}
}

func (db *DB) releaseAll() {
	for _, t := range db.tables {
		t.Reader.Close()
	}
}

// pinAllDeep hides the acquisition one level further down.
func (db *DB) pinAllDeep() {
	db.pinAll()
}

func (db *DB) captureLeaky() error {
	db.pinAllDeep()
	if err := db.step(); err != nil {
		return err // want `error return leaks reader ref`
	}
	db.releaseAll()
	return nil
}

func (db *DB) captureClean() error {
	db.pinAll()
	if err := db.step(); err != nil {
		db.releaseAll()
		return err
	}
	db.releaseAll()
	return nil
}

// A deferred releasing helper protects like a direct defer.
func (db *DB) captureDeferred() error {
	db.pinAll()
	defer db.releaseAll()
	if err := db.step(); err != nil {
		return err
	}
	return nil
}

// A fallible callee keeps its acquisitions to itself: its success return
// transferred them into shared state (the splitPartition/mergeLocked commit
// shape), and its own error paths are checked in its own body — the caller's
// later error returns hold nothing.
func (db *DB) commitRetain(nums []uint32) error {
	db.retainLogs(nums)
	if err := db.step(); err != nil {
		db.releaseLogs(nums)
		return err
	}
	return nil
}

func (db *DB) commitCaller() error {
	if err := db.commitRetain(nil); err != nil {
		return err
	}
	if err := db.step(); err != nil {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// The escape hatch: ownership recorded somewhere the checker cannot see.
func (db *DB) adoptLeaky(t *Table) error {
	t.Reader.Ref()
	if err := db.step(); err != nil {
		//unikv:allow(refpair) ref adopted by the recovery registry before step
		return err
	}
	return nil
}
