// Package refpair enforces the refcount-fencing protocol of the storage
// packages: an acquired reference — sstable.Reader.Ref, DB.retainLogs, a
// vlog append-window Pin, or a NewSnapshot handle — must reach its matching
// release (Close, releaseLogs, Unpin, Snapshot.Close) on every ERROR path.
// A reference leaked on an error return is never retried and never dropped:
// the refcount stays above zero forever, which permanently blocks value-log
// GC and table retirement (the file outlives every reader that could have
// used it).
//
// Success returns are deliberately exempt: the engine's constructors and
// commit paths transfer ownership on success (NewSnapshot hands its Refs to
// the Snapshot, gcTables installs its retains into partition state), and a
// transfer looks exactly like a leak to a checker that cannot see the
// receiving struct. Error returns have no such excuse — a failed operation
// owns everything it acquired.
//
// The check is interprocedural via fixed-point summaries over the package
// call graph (internal/analysis/callgraph): a void helper that acquires
// (pinAll) makes its caller the holder, and a helper that releases
// (releaseAll) discharges the caller's obligation — at any call depth. Only
// void helpers hand acquisitions to the caller: a callee that returns a
// non-error result owns them via the returned handle (the NewSnapshot
// shape), and a callee that can fail polices its own error paths and
// transfers ownership into shared state when it succeeds (the
// splitPartition/mergeLocked commit shape) — either way the caller's frame
// holds nothing.
//
// Two recognized non-leaks: the error return immediately guarding a
// (handle, error) constructor call reports the constructor's OWN failure
// (nothing was acquired), and a `defer release` protects every later path.
// Function literals are skipped: a goroutine or callback owns its own
// references.
package refpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"unikv/internal/analysis"
	"unikv/internal/analysis/callgraph"
	"unikv/internal/analysis/unikvlint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "refpair",
	Doc: "require every acquired reference (Reader.Ref, retainLogs, vlog Pin, " +
		"NewSnapshot) to be released on all error paths — a leaked ref " +
		"permanently blocks value-log GC and table retirement",
	Run: run,
}

func init() { analysis.RegisterCheck(Analyzer.Name) }

// pairKind is one acquire/release protocol the checker knows.
type pairKind uint8

const (
	kindRef  pairKind = iota // Reader.Ref / Close
	kindLogs                 // retainLogs / releaseLogs
	kindPin                  // Pin / Unpin
	kindSnap                 // NewSnapshot / Snapshot.Close
	numKinds
)

func (k pairKind) describe(key string) string {
	switch k {
	case kindRef:
		return "reader ref " + key + ".Ref()"
	case kindLogs:
		return "log retention (retainLogs)"
	case kindPin:
		return "vlog append pin"
	case kindSnap:
		return "snapshot " + key
	}
	return "reference"
}

func (k pairKind) release() string {
	switch k {
	case kindRef:
		return "Close"
	case kindLogs:
		return "releaseLogs"
	case kindPin:
		return "Unpin"
	case kindSnap:
		return "Close"
	}
	return "release"
}

// evKind enumerates the replayed event stream.
type evKind uint8

const (
	evAcquire evKind = iota
	evRelease
	evDeferRelease
	evErrReturn
	evCall
)

type event struct {
	kind evKind
	pair pairKind
	// key pairs acquire with release: the receiver chain for kindRef
	// ("t.Reader"), the handle variable for kindSnap ("s"); kindLogs and
	// kindPin pair by kind alone (retain and release sets differ textually).
	key string
	pos token.Pos
	// errObj, on an evAcquire from a (handle, error) constructor, is the
	// error variable bound alongside the handle; on an evErrReturn it is the
	// returned error variable. A return of the constructor's own error does
	// not leak the handle — nothing was acquired.
	errObj types.Object
	callee *callgraph.Func // evCall
	// deferred marks an evCall made from a defer: the callee's releases
	// protect every later path, and its acquisitions are ignored.
	deferred bool
}

// refSummary is one function's transitive acquire/release effect.
type refSummary struct {
	acq [numKinds]bool
	rel [numKinds]bool
}

func summariesEqual(a, b refSummary) bool { return a == b }

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.RestrictedStorePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	g := callgraph.Build(pass)

	events := map[*callgraph.Func][]event{}
	for _, f := range g.Funcs {
		if f.TestFile {
			continue
		}
		events[f] = collect(pass, g, f)
	}

	sums := callgraph.Fixpoint(g, summariesEqual,
		func(f *callgraph.Func, get func(*callgraph.Func) refSummary) refSummary {
			var s refSummary
			for _, ev := range events[f] {
				switch ev.kind {
				case evAcquire:
					s.acq[ev.pair] = true
				case evRelease, evDeferRelease:
					s.rel[ev.pair] = true
				case evCall:
					cs := get(ev.callee)
					for k := pairKind(0); k < numKinds; k++ {
						if cs.rel[k] {
							s.rel[k] = true
						}
						// Acquisitions travel to the caller only from void
						// helpers (see handsToCaller).
						if cs.acq[k] && !cs.rel[k] && handsToCaller(ev.callee) {
							s.acq[k] = true
						}
					}
				}
			}
			return s
		})

	for _, f := range g.Funcs {
		replay(pass, f, events[f], sums)
	}
	return nil, nil
}

// handsToCaller reports whether f's net acquisitions become its caller's
// obligation. Only void helpers qualify: a callee returning a non-error
// result owns its acquisitions via the returned handle (the NewSnapshot
// shape), and a callee that can fail is responsible for its own error
// paths — when it returns nil its success transferred ownership into
// shared state, exactly like an intra-function success return (the
// splitPartition/mergeLocked commit shape). In both cases the caller's
// frame holds nothing to release.
func handsToCaller(f *callgraph.Func) bool {
	sig, ok := f.Obj.Type().(*types.Signature)
	return ok && sig.Results().Len() == 0
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool { return types.Implements(t, errorIface) }

// held is one live obligation during replay.
type held struct {
	pair     pairKind
	key      string
	pos      token.Pos
	errObj   types.Object // constructor's error variable, if any
	deferred bool         // a defer will release it on every path
}

// replay walks f's event stream in source order, reporting every error
// return that abandons a live, non-deferred obligation. Source order
// approximates path order for the engine's idiom (acquire; on failure
// release+return; on success transfer): a release inside an early error
// branch may mask a later leak (a miss, never a false report).
func replay(pass *analysis.Pass, f *callgraph.Func, events []event, sums map[*callgraph.Func]refSummary) {
	var live []*held
	release := func(pair pairKind, key string, deferOnly bool) {
		kept := live[:0]
		for _, h := range live {
			match := h.pair == pair
			if pair == kindRef || pair == kindSnap {
				match = (h.pair == kindRef || h.pair == kindSnap) && h.key == key
			}
			if match {
				if deferOnly {
					h.deferred = true
				} else {
					continue // discharged
				}
			}
			kept = append(kept, h)
		}
		live = kept
	}

	for _, ev := range events {
		switch ev.kind {
		case evAcquire:
			live = append(live, &held{pair: ev.pair, key: ev.key, pos: ev.pos, errObj: ev.errObj})
		case evRelease:
			release(ev.pair, ev.key, false)
		case evDeferRelease:
			release(ev.pair, ev.key, true)
		case evCall:
			cs := sums[ev.callee]
			for k := pairKind(0); k < numKinds; k++ {
				if !cs.rel[k] {
					continue
				}
				// An interprocedural release cannot be key-matched; discharge
				// (or, from a defer, protect) every live obligation of that
				// kind.
				kept := live[:0]
				for _, h := range live {
					if h.pair == k {
						if !ev.deferred {
							continue
						}
						h.deferred = true
					}
					kept = append(kept, h)
				}
				live = kept
			}
			if ev.deferred {
				break
			}
			for k := pairKind(0); k < numKinds; k++ {
				if cs.acq[k] && !cs.rel[k] && handsToCaller(ev.callee) {
					live = append(live, &held{pair: k, key: "via " + ev.callee.Name, pos: ev.pos})
				}
			}
		case evErrReturn:
			for _, h := range live {
				if h.deferred {
					continue
				}
				if h.errObj != nil && ev.errObj != nil && h.errObj == ev.errObj {
					continue // the constructor's own failure: nothing acquired
				}
				pass.Reportf(ev.pos,
					"error return leaks %s acquired at %s: release it on this path (or defer the %s) — a leaked reference permanently blocks value-log GC",
					h.pair.describe(h.key), pass.Fset.Position(h.pos), h.pair.release())
			}
		}
	}
}

// collect extracts f's event stream in source order. Function literals are
// skipped except directly deferred ones, whose releases pair like any other
// defer (the deferred-closure cleanup idiom).
func collect(pass *analysis.Pass, g *callgraph.Graph, f *callgraph.Func) []event {
	var out []event
	info := pass.TypesInfo

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
				} else {
					walk(n.Call, true)
				}
				return false
			case *ast.AssignStmt:
				// Constructor shape: handle[, err] := NewSnapshot-like call.
				if len(n.Rhs) == 1 {
					if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
						if ev, ok := classifyAcquire(info, call); ok {
							if ev.pair == kindSnap {
								if id, ok := n.Lhs[0].(*ast.Ident); ok {
									ev.key = id.Name
									ev.errObj = objOf(info, n.Lhs[len(n.Lhs)-1])
								}
							}
							out = append(out, ev)
							// Still walk the RHS for nested calls (args).
							for _, a := range call.Args {
								walk(a, inDefer)
							}
							return false
						}
					}
				}
				return true
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					walk(r, inDefer)
				}
				if obj, isErr := errorReturn(pass, f, n); isErr {
					out = append(out, event{kind: evErrReturn, pos: n.Pos(), errObj: obj})
				}
				return false
			case *ast.CallExpr:
				if ev, ok := classifyAcquire(info, call(n)); ok {
					if !inDefer { // a deferred acquire makes no sense; ignore
						out = append(out, ev)
					}
					return true
				}
				if ev, ok := classifyRelease(info, n); ok {
					if inDefer {
						ev.kind = evDeferRelease
					}
					out = append(out, ev)
					return true
				}
				if obj := callgraph.StaticCallee(info, n); obj != nil {
					if callee, ok := g.ByObj[obj]; ok {
						out = append(out, event{kind: evCall, pos: n.Pos(), callee: callee, deferred: inDefer})
					}
				}
				return true
			}
			return true
		})
	}
	walk(f.Decl.Body, false)
	return out
}

func call(c *ast.CallExpr) *ast.CallExpr { return c }

func objOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// classifyAcquire recognizes the acquire half of each protocol.
func classifyAcquire(info *types.Info, c *ast.CallExpr) (event, bool) {
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "retainLogs" {
			return event{kind: evAcquire, pair: kindLogs, key: "logs", pos: c.Pos()}, true
		}
		return event{}, false
	}
	recv := info.Types[sel.X].Type
	switch sel.Sel.Name {
	case "Ref":
		if len(c.Args) == 0 && recv != nil &&
			lintutil.HasMethod(recv, "Ref") && lintutil.HasMethod(recv, "Close") {
			return event{kind: evAcquire, pair: kindRef, key: lintutil.ExprString(sel.X), pos: c.Pos()}, true
		}
	case "retainLogs":
		return event{kind: evAcquire, pair: kindLogs, key: "logs", pos: c.Pos()}, true
	case "Pin":
		if recv != nil && lintutil.HasMethod(recv, "Unpin") {
			return event{kind: evAcquire, pair: kindPin, key: "pin", pos: c.Pos()}, true
		}
	case "NewSnapshot":
		return event{kind: evAcquire, pair: kindSnap, key: "<snapshot>", pos: c.Pos()}, true
	}
	return event{}, false
}

// classifyRelease recognizes the release half of each protocol.
func classifyRelease(info *types.Info, c *ast.CallExpr) (event, bool) {
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "releaseLogs" {
			return event{kind: evRelease, pair: kindLogs, pos: c.Pos()}, true
		}
		return event{}, false
	}
	switch sel.Sel.Name {
	case "Close":
		// Pairs by key: releases a held kindRef/kindSnap on the same chain.
		return event{kind: evRelease, pair: kindRef, key: lintutil.ExprString(sel.X), pos: c.Pos()}, true
	case "releaseLogs":
		return event{kind: evRelease, pair: kindLogs, pos: c.Pos()}, true
	case "Unpin":
		if recv := info.Types[sel.X].Type; recv != nil && lintutil.HasMethod(recv, "Pin") {
			return event{kind: evRelease, pair: kindPin, pos: c.Pos()}, true
		}
	}
	return event{}, false
}

// errorReturn reports whether ret is a definite-error return of f: the
// function's last result is an error and the expression returned in that
// position is an error-typed identifier (not nil) or a fresh construction
// (errors.New / fmt.Errorf / WithClass / classified). Tail calls and plain
// nils are ambiguous-or-success and never flagged.
func errorReturn(pass *analysis.Pass, f *callgraph.Func, ret *ast.ReturnStmt) (types.Object, bool) {
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil, false
	}
	if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return nil, false
	}
	if len(ret.Results) != sig.Results().Len() {
		return nil, false // naked return or spread call: ambiguous
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	switch e := last.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil || e.Name == "nil" {
			return nil, false
		}
		if !isErrorType(obj.Type()) {
			return nil, false
		}
		return obj, true
	case *ast.CallExpr:
		switch name := calleeName(e); name {
		case "New", "Errorf", "WithClass", "classified":
			return nil, true
		}
	}
	return nil, false
}

func calleeName(c *ast.CallExpr) string {
	switch fun := ast.Unparen(c.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
