package refpair_test

import (
	"testing"

	"unikv/internal/analysis/analysistest"
	"unikv/internal/analysis/unikvlint/refpair"
)

func TestRefPair(t *testing.T) {
	analysistest.Run(t, "testdata", refpair.Analyzer, "internal/core")
}
