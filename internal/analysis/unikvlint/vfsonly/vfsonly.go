// Package vfsonly forbids direct package-os file I/O in the storage
// packages. Every byte the engine moves must flow through vfs.FS: that is
// what makes I/O accounting exact, failure injection (FailFS) possible, and
// the crash-model tests (memFS SyncDir/Crash) honest — a single raw os.Open
// silently bypasses all three.
package vfsonly

import (
	"go/ast"
	"strconv"

	"unikv/internal/analysis"
	"unikv/internal/analysis/unikvlint/lintutil"
)

// forbidden lists the package-os functions with a vfs.FS equivalent.
var forbidden = map[string]bool{
	"Open":       true,
	"OpenFile":   true,
	"Create":     true,
	"CreateTemp": true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"ReadFile":   true,
	"WriteFile":  true,
	"ReadDir":    true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"MkdirTemp":  true,
}

var Analyzer = &analysis.Analyzer{
	Name: "vfsonly",
	Doc: "forbid direct os file I/O in storage packages: all engine I/O must " +
		"go through vfs.FS so accounting, failure injection, and the crash " +
		"model stay complete (_test.go files and internal/vfs are exempt)",
	Run: run,
}

func init() { analysis.RegisterCheck(Analyzer.Name) }

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.RestrictedStorePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if lintutil.TestFile(pass.Fset, f) {
			continue
		}
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "io/ioutil" {
				pass.Reportf(imp.Pos(),
					"import of io/ioutil in storage package %s: route I/O through vfs.FS", pass.Pkg.Path())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" || !forbidden[obj.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"direct os.%s in storage package %s: route I/O through vfs.FS so accounting and failure injection see it",
				obj.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}
