// Fixture: a package outside the storage set may use package os freely.
package other

import "os"

func fine(path string) ([]byte, error) {
	return os.ReadFile(path)
}
