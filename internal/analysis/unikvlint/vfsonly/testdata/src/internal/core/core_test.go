// _test.go files are exempt: tests legitimately stage real files.
package core

import "os"

func helperForTests() error {
	f, err := os.Create("scratch")
	if err != nil {
		return err
	}
	return f.Close()
}
