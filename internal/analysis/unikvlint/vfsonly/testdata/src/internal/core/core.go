// Fixture: a storage package (import path ends in internal/core) whose
// non-test files must not touch package os directly.
package core

import (
	"io/ioutil" // want `import of io/ioutil in storage package internal/core`
	"os"
)

func readState(path string) ([]byte, error) {
	return os.ReadFile(path) // want `direct os\.ReadFile in storage package internal/core`
}

func badPublish(dir string) error {
	f, err := os.Create(dir + "/CURRENT.tmp") // want `direct os\.Create in storage package internal/core`
	if err != nil {
		return err
	}
	f.Close()
	return os.Rename(dir+"/CURRENT.tmp", dir+"/CURRENT") // want `direct os\.Rename in storage package internal/core`
}

func listDir(dir string) ([]os.DirEntry, error) {
	return os.ReadDir(dir) // want `direct os\.ReadDir in storage package internal/core`
}

func legacyRead(path string) ([]byte, error) {
	return ioutil.ReadFile(path)
}

// Non-I/O uses of package os are fine: errors, sentinels, types.
func classify(err error) bool {
	return os.IsNotExist(err) || err == os.ErrClosed
}

// The escape hatch silences a justified use.
func pidFile() (*os.File, error) {
	//unikv:allow(vfsonly) process-global pid file, intentionally outside the engine's FS
	return os.Create("/tmp/unikv.pid")
}
