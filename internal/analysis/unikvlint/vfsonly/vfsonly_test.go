package vfsonly_test

import (
	"testing"

	"unikv/internal/analysis/analysistest"
	"unikv/internal/analysis/unikvlint/vfsonly"
)

func TestVfsonly(t *testing.T) {
	analysistest.Run(t, "testdata", vfsonly.Analyzer, "internal/core", "other")
}
