// Package lockorder enforces the engine's documented mutex hierarchy
// (internal/core/db.go):
//
//	snapMu -> maintMu -> flushMu -> router.mu -> partition.mu
//	  -> unsorted.viewMu -> logRefs.mu -> hotring.writerMu
//
// Within each function it replays the acquisition sequence in source order
// and reports any acquisition of a lower-ranked mutex while a higher-ranked
// one is held. A one-level call-graph summary extends the check across a
// single call edge: calling a same-package function that acquires a
// lower-ranked mutex while holding a higher-ranked one is the cross-function
// shape of the same inversion (PR 2's vlog/GC race was exactly this,
// found only by -race stress at the time). It also reports a Lock with no
// matching Unlock — direct, deferred, or in a deferred closure — anywhere
// in the function; intentional lock handoffs need a //unikv:allow(lockorder)
// with a reason.
//
// The analysis is path-insensitive: it walks statements in source order and
// treats a release in any branch as releasing for the remainder, which
// under-reports (never falsely) on branchy code.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"unikv/internal/analysis"
	"unikv/internal/analysis/unikvlint/lintutil"
)

const docOrder = "snapMu -> maintMu -> flushMu -> router.mu -> partition.mu -> unsorted.viewMu -> logRefs.mu -> hotring.writerMu"

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "enforce the documented mutex acquisition order (" + docOrder + ") " +
		"per function plus one call level, and require every Lock to have a " +
		"matching Unlock or defer",
	Run: run,
}

// mutexRef is one classified reference to a ranked mutex.
type mutexRef struct {
	rank  int
	label string // human name from the documented order
	key   string // textual receiver ("p.mu", "db.router") for pairing
}

var rankLabels = [...]string{"snapMu", "maintMu", "flushMu", "router.mu", "partition.mu", "unsorted.viewMu", "logRefs.mu", "hotring.writerMu"}

var acquireMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var releaseMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// classify resolves the receiver of a Lock/Unlock call to a ranked mutex.
// snapMu (the snapshot registry lock — rank 0: NewSnapshot holds it across
// the whole capture, which RLocks the router and every partition, and Close
// takes it before any teardown lock), maintMu, flushMu, router, viewMu (the
// unsorted store's lazy sorted-view rebuild lock — after partition.mu,
// never held across other acquisitions), logRefs, and writerMu (the hot
// ring's per-shard mutator lock — last rank: ring methods are called with
// core locks held but never acquire one) are identified by field name
// (router and logRefs embed their mutex, so the lock method is called on
// the field itself); partition.mu by a field named mu on a type named
// partition.
func classify(info *types.Info, recv ast.Expr) (mutexRef, bool) {
	var fieldName string
	var owner ast.Expr
	switch r := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		fieldName = r.Sel.Name
		owner = r.X
	case *ast.Ident:
		fieldName = r.Name
	default:
		return mutexRef{}, false
	}
	rank := -1
	switch fieldName {
	case "snapMu":
		rank = 0
	case "maintMu":
		rank = 1
	case "flushMu":
		rank = 2
	case "router":
		rank = 3
	case "viewMu":
		rank = 5
	case "logRefs":
		rank = 6
	case "writerMu":
		rank = 7
	case "mu":
		if owner != nil {
			if tv, ok := info.Types[owner]; ok && lintutil.NamedName(tv.Type) == "partition" {
				rank = 4
			}
		}
	}
	if rank < 0 {
		return mutexRef{}, false
	}
	return mutexRef{rank: rank, label: rankLabels[rank], key: lintutil.ExprString(recv)}, true
}

// event is one step of a function's replayed lock sequence.
type event struct {
	kind eventKind
	ref  mutexRef    // acquire / release / deferRelease
	fn   *types.Func // call
	pos  token.Pos
}

type eventKind int

const (
	evAcquire eventKind = iota
	evRelease
	evDeferRelease
	evCall
)

// summary is a function's direct acquisitions, for the one-level
// call-site check.
type summary struct{ acquires []mutexRef }

func run(pass *analysis.Pass) (any, error) {
	// Pass A: per-function summaries.
	summaries := map[*types.Func]*summary{}
	type analyzedFn struct {
		fn   *types.Func // nil for function literals
		name string
		body *ast.BlockStmt
	}
	var fns []analyzedFn

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			name := fd.Name.Name
			if fd.Recv != nil && fn != nil {
				name = fn.Name()
			}
			fns = append(fns, analyzedFn{fn: fn, name: name, body: fd.Body})
		}
	}
	for _, af := range fns {
		if af.fn == nil {
			continue
		}
		s := &summary{}
		events, _ := collect(pass, af.body)
		for _, ev := range events {
			if ev.kind == evAcquire {
				s.acquires = append(s.acquires, ev.ref)
			}
		}
		summaries[af.fn] = s
	}

	// Pass B: replay each function (and each non-deferred function
	// literal, which runs as its own goroutine or callback).
	for i := 0; i < len(fns); i++ {
		af := fns[i]
		events, lits := collect(pass, af.body)
		for _, lit := range lits {
			fns = append(fns, analyzedFn{name: af.name + " (func literal)", body: lit.Body})
		}
		replay(pass, af.fn, af.name, events, summaries)
	}
	return nil, nil
}

// collect linearizes body into lock events in source order. Deferred
// unlocks — `defer x.Unlock()` or unlocks inside a `defer func(){...}()`
// literal — become evDeferRelease. Other function literals are returned for
// separate replay: their bodies run at some later time, not at this point
// of the sequence.
func collect(pass *analysis.Pass, body *ast.BlockStmt) ([]event, []*ast.FuncLit) {
	var events []event
	var lits []*ast.FuncLit
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Deferred direct unlock.
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok && releaseMethods[sel.Sel.Name] {
				if ref, ok := classify(pass.TypesInfo, sel.X); ok {
					events = append(events, event{kind: evDeferRelease, ref: ref, pos: n.Pos()})
				}
				return false
			}
			// Deferred closure: its unlocks release at function end; any
			// acquisitions inside it are replayed separately below.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && releaseMethods[sel.Sel.Name] {
						if ref, ok := classify(pass.TypesInfo, sel.X); ok {
							events = append(events, event{kind: evDeferRelease, ref: ref, pos: call.Pos()})
						}
					}
					return true
				})
				lits = append(lits, lit)
				return false
			}
			return true
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if acquireMethods[sel.Sel.Name] || releaseMethods[sel.Sel.Name] {
					if ref, ok := classify(pass.TypesInfo, sel.X); ok {
						kind := evAcquire
						if releaseMethods[sel.Sel.Name] {
							kind = evRelease
						}
						events = append(events, event{kind: kind, ref: ref, pos: n.Pos()})
						return true
					}
				}
			}
			if fn := lintutil.StaticCallee(pass.TypesInfo, n); fn != nil && fn.Pkg() == pass.Pkg {
				events = append(events, event{kind: evCall, fn: fn, pos: n.Pos()})
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
	return events, lits
}

// replay simulates the event sequence, reporting order inversions,
// cross-call inversions, and unpaired Locks.
func replay(pass *analysis.Pass, self *types.Func, name string, events []event, summaries map[*types.Func]*summary) {
	type heldLock struct {
		ref        mutexRef
		pos        token.Pos
		deferFreed bool
	}
	var held []heldLock
	var pendingDefers []mutexRef // defers seen before their Lock (rare)

	for _, ev := range events {
		switch ev.kind {
		case evAcquire:
			for _, h := range held {
				if h.ref.rank > ev.ref.rank {
					pass.Reportf(ev.pos,
						"acquires %s while %s (held since %s) — inverts the documented lock order %s",
						ev.ref.label, h.ref.label, pass.Fset.Position(h.pos), docOrder)
				}
			}
			// A defer registered before the Lock still pairs with it.
			paired := false
			for i, d := range pendingDefers {
				if d.key == ev.ref.key {
					pendingDefers = append(pendingDefers[:i], pendingDefers[i+1:]...)
					paired = true
					break
				}
			}
			held = append(held, heldLock{ref: ev.ref, pos: ev.pos, deferFreed: paired})
		case evRelease:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].ref.key == ev.ref.key && !held[i].deferFreed {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case evDeferRelease:
			matched := false
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].ref.key == ev.ref.key && !held[i].deferFreed {
					held[i].deferFreed = true // held to function end, but paired
					matched = true
					break
				}
			}
			if !matched {
				pendingDefers = append(pendingDefers, ev.ref)
			}
		case evCall:
			if len(held) == 0 || ev.fn == self {
				continue
			}
			s := summaries[ev.fn]
			if s == nil {
				continue
			}
			for _, acq := range s.acquires {
				for _, h := range held {
					if h.ref.rank > acq.rank {
						pass.Reportf(ev.pos,
							"call to %s acquires %s while %s is held (since %s) — inverts the documented lock order %s across one call",
							ev.fn.Name(), acq.label, h.ref.label, pass.Fset.Position(h.pos), docOrder)
					}
				}
			}
		}
	}

	for _, h := range held {
		if h.deferFreed {
			continue
		}
		pass.Reportf(h.pos,
			"%s is locked here but never unlocked in %s (no Unlock or defer on any path); annotate intentional handoffs with //unikv:allow(lockorder)",
			h.ref.label, name)
	}
}
