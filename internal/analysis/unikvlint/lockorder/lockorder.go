// Package lockorder enforces the engine's documented mutex hierarchy
// (internal/core/db.go):
//
//	snapMu -> maintMu -> flushMu -> router.mu -> partition.mu
//	  -> unsorted.viewMu -> logRefs.mu -> hotring.writerMu
//
// Within each function it replays the acquisition sequence in source order
// and reports any acquisition of a lower-ranked mutex while a higher-ranked
// one is held. Fixed-point call summaries (internal/analysis/callgraph)
// extend the check across the whole package call graph: each function's
// summary is the set of ranked mutexes it acquires directly or through any
// chain of same-package callees, iterated to convergence, so calling a
// helper whose helper's helper acquires a lower-ranked mutex while holding
// a higher-ranked one is caught at the call site (PR 2's vlog/GC race was
// the one-edge instance of this shape, found only by -race stress at the
// time; PR 4's one-level summaries caught exactly one edge and went blind
// at two). Read and write acquisitions are distinguished: an RUnlock only
// pairs with an RLock of the same mutex and an Unlock only with a Lock, so
// a mismatched release no longer silently satisfies the pairing check.
// It also reports a Lock with no matching Unlock — direct, deferred, or in
// a deferred closure — anywhere in the function; intentional lock handoffs
// need a //unikv:allow(lockorder) with a reason.
//
// The analysis is path-insensitive: it walks statements in source order and
// treats a release in any branch as releasing for the remainder, which
// under-reports (never falsely) on branchy code. Function literals are
// replayed as their own sequences (they run as goroutines or callbacks, not
// at their point of definition), and their acquisitions deliberately stay
// out of the enclosing function's summary — a lock taken on another
// goroutine is a different lock stack, not an inversion.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"unikv/internal/analysis"
	"unikv/internal/analysis/callgraph"
	"unikv/internal/analysis/unikvlint/lintutil"
)

const docOrder = "snapMu -> maintMu -> flushMu -> router.mu -> partition.mu -> unsorted.viewMu -> logRefs.mu -> hotring.writerMu"

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "enforce the documented mutex acquisition order (" + docOrder + ") " +
		"per function and across the package call graph (fixed-point call " +
		"summaries), and require every Lock/RLock to have a matching " +
		"Unlock/RUnlock or defer",
	Run: run,
}

func init() { analysis.RegisterCheck(Analyzer.Name) }

// mutexRef is one classified reference to a ranked mutex.
type mutexRef struct {
	rank  int
	label string // human name from the documented order
	key   string // textual receiver ("p.mu", "db.router") for pairing
	read  bool   // RLock/RUnlock rather than Lock/Unlock
}

var rankLabels = [...]string{"snapMu", "maintMu", "flushMu", "router.mu", "partition.mu", "unsorted.viewMu", "logRefs.mu", "hotring.writerMu"}

// acquireMethods and releaseMethods classify the method name and carry the
// read/write mode; the two sides pair only when both key and mode match.
var acquireMethods = map[string]bool{"Lock": false, "RLock": true, "TryLock": false, "TryRLock": true}
var releaseMethods = map[string]bool{"Unlock": false, "RUnlock": true}

// classify resolves the receiver of a Lock/Unlock call to a ranked mutex.
// snapMu (the snapshot registry lock — rank 0: NewSnapshot holds it across
// the whole capture, which RLocks the router and every partition, and Close
// takes it before any teardown lock), maintMu, flushMu, router, viewMu (the
// unsorted store's lazy sorted-view rebuild lock — after partition.mu,
// never held across other acquisitions), logRefs, and writerMu (the hot
// ring's per-shard mutator lock — last rank: ring methods are called with
// core locks held but never acquire one) are identified by field name
// (router and logRefs embed their mutex, so the lock method is called on
// the field itself); partition.mu by a field named mu on a type named
// partition.
func classify(info *types.Info, recv ast.Expr) (mutexRef, bool) {
	var fieldName string
	var owner ast.Expr
	switch r := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		fieldName = r.Sel.Name
		owner = r.X
	case *ast.Ident:
		fieldName = r.Name
	default:
		return mutexRef{}, false
	}
	rank := -1
	switch fieldName {
	case "snapMu":
		rank = 0
	case "maintMu":
		rank = 1
	case "flushMu":
		rank = 2
	case "router":
		rank = 3
	case "viewMu":
		rank = 5
	case "logRefs":
		rank = 6
	case "writerMu":
		rank = 7
	case "mu":
		if owner != nil {
			if tv, ok := info.Types[owner]; ok && lintutil.NamedName(tv.Type) == "partition" {
				rank = 4
			}
		}
	}
	if rank < 0 {
		return mutexRef{}, false
	}
	return mutexRef{rank: rank, label: rankLabels[rank], key: lintutil.ExprString(recv)}, true
}

// event is one step of a function's replayed lock sequence.
type event struct {
	kind eventKind
	ref  mutexRef    // acquire / release / deferRelease
	fn   *types.Func // call
	pos  token.Pos
}

type eventKind int

const (
	evAcquire eventKind = iota
	evRelease
	evDeferRelease
	evCall
)

// acqKey indexes a transitive-summary entry: the same mutex rank acquired
// for reading and for writing are distinct entries (the diagnostic names
// the mode), but both invert against a higher-ranked held lock.
type acqKey struct {
	rank int
	read bool
}

// lockSummary is a function's fixed-point effect summary: every ranked
// acquisition it performs directly or through any chain of same-package
// callees, each mapped to the call chain that reaches it ("" = direct).
type lockSummary map[acqKey]string

func summariesEqual(a, b lockSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func run(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass)

	// Direct per-function facts, computed once: the linearized lock events
	// and the function literals to replay separately.
	type direct struct {
		events []event
		lits   []*ast.FuncLit
	}
	directs := map[*callgraph.Func]*direct{}
	for _, f := range g.Funcs {
		events, lits := collect(pass, f.Decl.Body)
		directs[f] = &direct{events: events, lits: lits}
	}

	// Fixed-point transitive summaries over the call graph. Acquisitions
	// are drawn from the event stream (which excludes function-literal
	// interiors — those run on their own goroutine or at callback time),
	// and call edges likewise only from events, so the summary describes
	// what calling the function acquires synchronously.
	sums := callgraph.Fixpoint(g, summariesEqual, func(f *callgraph.Func, get func(*callgraph.Func) lockSummary) lockSummary {
		s := lockSummary{}
		for _, ev := range directs[f].events {
			switch ev.kind {
			case evAcquire:
				k := acqKey{rank: ev.ref.rank, read: ev.ref.read}
				if _, ok := s[k]; !ok {
					s[k] = ""
				}
			case evCall:
				callee := g.ByObj[ev.fn]
				if callee == nil || callee == f {
					continue
				}
				for k, via := range get(callee) {
					if _, ok := s[k]; ok {
						continue
					}
					chain := callee.Name
					if via != "" {
						chain += " -> " + via
					}
					s[k] = chain
				}
			}
		}
		return s
	})

	// Replay each function, then each non-deferred function literal (which
	// runs as its own goroutine or callback) as its own sequence.
	type job struct {
		self *callgraph.Func // nil for literals
		name string
		body *ast.BlockStmt
	}
	var jobs []job
	for _, f := range g.Funcs {
		jobs = append(jobs, job{self: f, name: f.Name, body: f.Decl.Body})
	}
	for i := 0; i < len(jobs); i++ {
		j := jobs[i]
		var events []event
		var lits []*ast.FuncLit
		if j.self != nil {
			d := directs[j.self]
			events, lits = d.events, d.lits
		} else {
			events, lits = collect(pass, j.body)
		}
		for _, lit := range lits {
			jobs = append(jobs, job{name: j.name + " (func literal)", body: lit.Body})
		}
		replay(pass, g, j.self, j.name, events, sums)
	}
	return nil, nil
}

// collect linearizes body into lock events in source order. Deferred
// unlocks — `defer x.Unlock()` or unlocks inside a `defer func(){...}()`
// literal — become evDeferRelease. Other function literals are returned for
// separate replay: their bodies run at some later time, not at this point
// of the sequence.
func collect(pass *analysis.Pass, body *ast.BlockStmt) ([]event, []*ast.FuncLit) {
	var events []event
	var lits []*ast.FuncLit
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Deferred direct unlock.
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
				if read, isRelease := releaseMethods[sel.Sel.Name]; isRelease {
					if ref, ok := classify(pass.TypesInfo, sel.X); ok {
						ref.read = read
						events = append(events, event{kind: evDeferRelease, ref: ref, pos: n.Pos()})
					}
					return false
				}
			}
			// Deferred closure: its unlocks release at function end; any
			// acquisitions inside it are replayed separately below.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						if read, isRelease := releaseMethods[sel.Sel.Name]; isRelease {
							if ref, ok := classify(pass.TypesInfo, sel.X); ok {
								ref.read = read
								events = append(events, event{kind: evDeferRelease, ref: ref, pos: call.Pos()})
							}
						}
					}
					return true
				})
				lits = append(lits, lit)
				return false
			}
			return true
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				read, isAcquire := acquireMethods[sel.Sel.Name]
				relRead, isRelease := releaseMethods[sel.Sel.Name]
				if isAcquire || isRelease {
					if ref, ok := classify(pass.TypesInfo, sel.X); ok {
						kind := evAcquire
						ref.read = read
						if isRelease {
							kind = evRelease
							ref.read = relRead
						}
						events = append(events, event{kind: kind, ref: ref, pos: n.Pos()})
						return true
					}
				}
			}
			if fn := callgraph.StaticCallee(pass.TypesInfo, n); fn != nil && fn.Pkg() == pass.Pkg {
				events = append(events, event{kind: evCall, fn: fn, pos: n.Pos()})
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
	return events, lits
}

// modeName names an acquisition's mode for the pairing diagnostics.
func modeName(read bool, acquire bool) string {
	switch {
	case read && acquire:
		return "RLocked"
	case read:
		return "RUnlocked"
	case acquire:
		return "locked"
	}
	return "unlocked"
}

// replay simulates the event sequence, reporting order inversions,
// cross-call inversions (against the fixed-point summaries), and unpaired
// Locks/RLocks.
func replay(pass *analysis.Pass, g *callgraph.Graph, self *callgraph.Func, name string, events []event, sums map[*callgraph.Func]lockSummary) {
	type heldLock struct {
		ref        mutexRef
		pos        token.Pos
		deferFreed bool
	}
	var held []heldLock
	var pendingDefers []mutexRef // defers seen before their Lock (rare)

	for _, ev := range events {
		switch ev.kind {
		case evAcquire:
			for _, h := range held {
				if h.ref.rank > ev.ref.rank {
					pass.Reportf(ev.pos,
						"acquires %s while %s (held since %s) — inverts the documented lock order %s",
						ev.ref.label, h.ref.label, pass.Fset.Position(h.pos), docOrder)
				}
			}
			// A defer registered before the Lock still pairs with it.
			paired := false
			for i, d := range pendingDefers {
				if d.key == ev.ref.key && d.read == ev.ref.read {
					pendingDefers = append(pendingDefers[:i], pendingDefers[i+1:]...)
					paired = true
					break
				}
			}
			held = append(held, heldLock{ref: ev.ref, pos: ev.pos, deferFreed: paired})
		case evRelease:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].ref.key == ev.ref.key && held[i].ref.read == ev.ref.read && !held[i].deferFreed {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case evDeferRelease:
			matched := false
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].ref.key == ev.ref.key && held[i].ref.read == ev.ref.read && !held[i].deferFreed {
					held[i].deferFreed = true // held to function end, but paired
					matched = true
					break
				}
			}
			if !matched {
				pendingDefers = append(pendingDefers, ev.ref)
			}
		case evCall:
			if len(held) == 0 {
				continue
			}
			callee := g.ByObj[ev.fn]
			if callee == nil || callee == self {
				continue
			}
			for k, via := range sums[callee] {
				for _, h := range held {
					if h.ref.rank <= k.rank {
						continue
					}
					if via == "" {
						pass.Reportf(ev.pos,
							"call to %s acquires %s while %s is held (since %s) — inverts the documented lock order %s across one call",
							callee.Name, rankLabels[k.rank], h.ref.label, pass.Fset.Position(h.pos), docOrder)
					} else {
						pass.Reportf(ev.pos,
							"call to %s transitively acquires %s (via %s) while %s is held (since %s) — inverts the documented lock order %s",
							callee.Name, rankLabels[k.rank], via, h.ref.label, pass.Fset.Position(h.pos), docOrder)
					}
				}
			}
		}
	}

	for _, h := range held {
		if h.deferFreed {
			continue
		}
		release := "Unlock"
		if h.ref.read {
			release = "RUnlock"
		}
		pass.Reportf(h.pos,
			"%s is %s here but never %s in %s (no %s or defer on any path); annotate intentional handoffs with //unikv:allow(lockorder)",
			h.ref.label, modeName(h.ref.read, true), modeName(h.ref.read, false), name, release)
	}
}
