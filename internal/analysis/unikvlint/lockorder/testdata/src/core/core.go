// Fixture: the documented lock hierarchy snapMu -> maintMu -> flushMu
// -> router.mu -> partition.mu -> unsorted.viewMu -> logRefs.mu
// -> hotring.writerMu replayed over local stand-ins (classification is by
// field name, so the mutex types themselves need only Lock/Unlock-shaped
// methods).
package core

type mutex struct{}

func (m *mutex) Lock()   {}
func (m *mutex) Unlock() {}

type rwmutex struct{}

func (m *rwmutex) Lock()    {}
func (m *rwmutex) Unlock()  {}
func (m *rwmutex) RLock()   {}
func (m *rwmutex) RUnlock() {}

type partition struct {
	mu   rwmutex
	keys int
}

type DB struct {
	snapMu  mutex
	maintMu mutex
	flushMu mutex
	router  struct {
		rwmutex
		parts []*partition
	}
	logRefs struct {
		mutex
		refs map[uint64]int
	}
}

func doWork() {}

// Every level in documented order, each paired: clean.
func (db *DB) correctOrder(p *partition) {
	db.maintMu.Lock()
	defer db.maintMu.Unlock()
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	db.router.RLock()
	p.mu.Lock()
	db.logRefs.Lock()
	db.logRefs.Unlock()
	p.mu.Unlock()
	db.router.RUnlock()
}

// The PR 2 vlog/GC shape: router looked up while the logRefs table is held.
func (db *DB) gcInversion() {
	db.logRefs.Lock()
	db.router.RLock() // want `acquires router\.mu while logRefs\.mu`
	db.router.RUnlock()
	db.logRefs.Unlock()
}

// Split path grabbing the flush lock after a partition lock.
func (db *DB) splitInversion(p *partition) {
	p.mu.Lock()
	defer p.mu.Unlock()
	db.flushMu.Lock() // want `acquires flushMu while partition\.mu`
	defer db.flushMu.Unlock()
}

// Locked on every path, released on none.
func (db *DB) leaky() {
	db.flushMu.Lock() // want `flushMu is locked here but never unlocked`
	doWork()
}

// Unlock living in a deferred closure still pairs.
func (db *DB) closureUnlock() {
	db.maintMu.Lock()
	defer func() {
		doWork()
		db.maintMu.Unlock()
	}()
	doWork()
}

// A goroutine body is replayed as its own sequence...
func (db *DB) spawn() {
	go func() {
		db.maintMu.Lock()
		defer db.maintMu.Unlock()
		db.flushMu.Lock()
		db.flushMu.Unlock()
	}()
}

// ...so inversions inside it are still caught.
func (db *DB) spawnBad() {
	go func() {
		db.logRefs.Lock()
		defer db.logRefs.Unlock()
		db.maintMu.Lock() // want `acquires maintMu while logRefs\.mu`
		db.maintMu.Unlock()
	}()
}

// One-level call summary: the helper is clean on its own…
func (db *DB) flushLocked() {
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	doWork()
}

// …and calling it under maintMu respects the order: clean.
func (db *DB) maintThenFlush() {
	db.maintMu.Lock()
	defer db.maintMu.Unlock()
	db.flushLocked()
}

// But calling it under a partition lock inverts across the call edge.
func (db *DB) crossCallInversion(p *partition) {
	p.mu.Lock()
	defer p.mu.Unlock()
	db.flushLocked() // want `call to flushLocked acquires flushMu while partition\.mu is held`
}

// The hot ring's per-shard mutator lock (classified by field name, like
// the engine's hotring.shard).
type ringShard struct {
	writerMu mutex
	slots    int
}

// writerMu is the last rank: taking it under any core lock is clean.
// This is the split-invalidation shape — ring mutated while the router
// and the parent partition are still held.
func (db *DB) splitInvalidate(p *partition, sh *ringShard) {
	db.router.Lock()
	defer db.router.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	sh.writerMu.Lock()
	defer sh.writerMu.Unlock()
	doWork()
}

// But a ring mutator reaching back into the engine inverts: nothing
// ranked may be acquired while writerMu is held.
func (db *DB) ringReentry(p *partition, sh *ringShard) {
	sh.writerMu.Lock()
	defer sh.writerMu.Unlock()
	p.mu.Lock() // want `acquires partition\.mu while hotring\.writerMu`
	defer p.mu.Unlock()
}

// The unsorted store's lazy sorted-view rebuild lock (classified by field
// name, like the engine's unsorted.Store.viewMu).
type store struct {
	viewMu mutex
	tables int
}

// The lazy-rebuild shape: viewMu taken under a partition read lock is
// clean — it ranks directly after partition.mu.
func (db *DB) lazyRebuild(p *partition, s *store) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	doWork()
}

// But viewMu must never be held across another acquisition: a rebuild
// reaching for the logRefs table is fine rank-wise, reaching back for a
// partition lock is the inversion.
func (db *DB) viewReentry(p *partition, s *store) {
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	p.mu.RLock() // want `acquires partition\.mu while unsorted\.viewMu`
	defer p.mu.RUnlock()
}

// The NewSnapshot capture shape: the snapshot registry lock is rank 0,
// held across the whole multi-partition capture — router and partition
// read locks nest under it cleanly.
func (db *DB) snapshotCapture(p *partition) {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	db.router.RLock()
	defer db.router.RUnlock()
	p.mu.RLock()
	defer p.mu.RUnlock()
	doWork()
}

// But a teardown path that reaches for the registry after taking a
// maintenance lock inverts: Close must check the registry BEFORE any
// engine lock, or it deadlocks against an in-flight capture.
func (db *DB) teardownInversion() {
	db.maintMu.Lock()
	defer db.maintMu.Unlock()
	db.snapMu.Lock() // want `acquires snapMu while maintMu`
	defer db.snapMu.Unlock()
}

// Intentional handoff to the caller, documented and annotated.
func (db *DB) lockForCaller() {
	//unikv:allow(lockorder) handoff: releaseMaint is the required pair
	db.maintMu.Lock()
}

func (db *DB) releaseMaint() {
	db.maintMu.Unlock()
}

// ---------------------------------------------------------------------------
// Fixed-point depth: the one-level summaries of PR 4 saw exactly one call
// edge; the inversion below hides the acquisition two helpers deep.

// deepInner acquires flushMu (clean on its own)...
func (db *DB) deepInner() {
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	doWork()
}

// ...deepMiddle only forwards (no direct acquisition at all)...
func (db *DB) deepMiddle() {
	doWork()
	db.deepInner()
}

// ...so a caller holding partition.mu inverts across TWO call edges: the
// one-level engine was blind here, the fixed-point summary is not.
func (db *DB) deepInversion(p *partition) {
	p.mu.Lock()
	defer p.mu.Unlock()
	db.deepMiddle() // want `call to deepMiddle transitively acquires flushMu \(via deepInner\) while partition\.mu is held`
}

// Mutual recursion converges instead of looping: pingLock and pongLock
// call each other and each acquires one rank; the summaries stabilize and
// the inversion at the call site is still caught.
func (db *DB) pingLock(n int) {
	db.flushMu.Lock()
	db.flushMu.Unlock()
	if n > 0 {
		db.pongLock(n - 1)
	}
}

func (db *DB) pongLock(n int) {
	db.logRefs.Lock()
	db.logRefs.Unlock()
	if n > 0 {
		db.pingLock(n - 1)
	}
}

func (db *DB) recursiveInversion(p *partition, sh *ringShard) {
	sh.writerMu.Lock()
	defer sh.writerMu.Unlock()
	db.pongLock(3) // want `call to pongLock acquires logRefs\.mu while hotring\.writerMu is held` `call to pongLock transitively acquires flushMu \(via pingLock\) while hotring\.writerMu is held`
}

// ---------------------------------------------------------------------------
// Read/write pairing: an Unlock does not release an RLock. The router is
// RLocked here and the write-side Unlock leaves the read hold dangling —
// under PR 4's mode-blind pairing this slipped through.
func (db *DB) mismatchedRelease() {
	db.router.RLock() // want `router\.mu is RLocked here but never RUnlocked`
	doWork()
	db.router.Unlock()
}

// Matching modes pair: clean.
func (db *DB) readThenWrite() {
	db.router.RLock()
	doWork()
	db.router.RUnlock()
	db.router.Lock()
	doWork()
	db.router.Unlock()
}
