package lockorder_test

import (
	"testing"

	"unikv/internal/analysis/analysistest"
	"unikv/internal/analysis/unikvlint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "core")
}
