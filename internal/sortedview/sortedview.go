// Package sortedview implements a REMIX-style cross-table sorted view over
// a partition's UnsortedStore (PAPERS.md: "REMIX: Efficient Range Query for
// LSM-trees"). Unsorted tables are individually sorted but overlap each
// other, so a range query classically re-merges every table on every call
// and scan latency degrades linearly with table count until the size-based
// scan merge rewrites them. The view removes the per-call merge: it is one
// globally sorted array of (table, block, pos) cursors across all tables,
// so a scan binary-searches once and then walks entries in key order,
// materializing records positionally from the tables.
//
// Like REMIX's shared sorted view (and like the build-time-only learned
// indexes in "A Pragmatic Approach to Learned Indexing in RocksDB"), the
// view exploits that unsorted tables are immutable between flush and
// scan-merge: it is built incrementally at flush — the new table's
// pre-sorted entries are merged into the existing sorted array in one
// linear pass, never a from-scratch rebuild — and dropped or rebuilt
// wholesale when a merge, scan merge, GC-adjacent rewrite, or split
// replaces the table set.
//
// A View is immutable after construction and carries a monotonically
// increasing version: the owner (internal/unsorted.Store) swaps the
// current view under the partition's write lock, and a scan holding the
// partition read lock pins whichever view it loaded — entries, cursors,
// and the table readers they point into stay consistent for the scan's
// lifetime. The package has no locks of its own.
//
// Memory: one entry stores a copy of the key plus ~40 bytes of cursor and
// ordering state. This parallels the paper's two-level hash index, whose
// memory also scales with the UnsortedStore (UnsortedLimit bounds both).
package sortedview

import (
	"sort"
	"sync/atomic"

	"unikv/internal/codec"
	"unikv/internal/record"
	"unikv/internal/sstable"
)

// Entry is one cursor of the view: the ordering fields of a record plus
// its position inside its table. Values are never duplicated into the
// view — they are materialized from the table block on demand.
type Entry struct {
	// Key is a copy of the record's key (table block buffers are cache-
	// managed and must not be aliased past a block load).
	Key []byte
	// Seq and Kind mirror the record, so merge ordering and tombstone
	// checks never touch the table.
	Seq  uint64
	Kind record.Kind
	// Table indexes the view's table list; Block/Pos locate the record
	// inside that table (sstable.Reader.LoadBlock + Block.RecordAt).
	Table uint16
	Block int32
	Pos   int32
}

// versions issues view version numbers, package-global so versions stay
// unique across partitions (a scan pinning view v can assert it never
// observes entries from v').
var versions atomic.Uint64

// View is an immutable sorted view over a set of unsorted tables. Entries
// are ordered (key asc, seq desc) — identical to the merge order the view
// replaces — and keep every version of a key, including tombstones, so a
// scan layered above the SortedStore sees exactly the records the per-call
// k-way merge used to produce.
type View struct {
	version  uint64
	tables   []*sstable.Reader
	entries  []Entry
	keyBytes int64
}

// New returns an empty view.
func New() *View {
	return &View{version: versions.Add(1)}
}

// Version returns the view's unique version number.
func (v *View) Version() uint64 { return v.version }

// Len returns the entry count.
func (v *View) Len() int { return len(v.entries) }

// NumTables returns the number of tables the view spans.
func (v *View) NumTables() int { return len(v.tables) }

// MemoryBytes approximates the view's resident memory: key bytes plus
// fixed per-entry overhead.
func (v *View) MemoryBytes() int64 {
	const entryOverhead = 48 // slice header + seq/kind/cursor fields
	return v.keyBytes + int64(len(v.entries))*entryOverhead
}

// WithTable returns a new view extended with one freshly flushed table.
// entries must be the table's records in (key asc, seq desc) order with
// Key/Seq/Kind/Block/Pos set (Table is assigned here); Collect produces
// them from a reader, the flush path collects them while building the
// table. The merge of two sorted arrays is a single linear pass — the
// incremental build the package comment describes. The receiver is not
// modified; its entries are shared with the result where possible (Entry
// values are copied, the keys they point at are shared and immutable).
func (v *View) WithTable(r *sstable.Reader, entries []Entry) *View {
	id := len(v.tables)
	if id > 0xffff {
		// Mirrors the UnsortedStore's own local-ID bound; unreachable
		// before unsorted.Store.AddTable fails first.
		panic("sortedview: too many tables")
	}
	nv := &View{
		version: versions.Add(1),
		tables:  append(append([]*sstable.Reader(nil), v.tables...), r),
		entries: make([]Entry, 0, len(v.entries)+len(entries)),
	}
	i, j := 0, 0
	for i < len(v.entries) && j < len(entries) {
		a, b := v.entries[i], entries[j]
		if less(b.Key, b.Seq, a.Key, a.Seq) {
			b.Table = uint16(id)
			nv.entries = append(nv.entries, b)
			j++
		} else {
			nv.entries = append(nv.entries, a)
			i++
		}
	}
	nv.entries = append(nv.entries, v.entries[i:]...)
	for ; j < len(entries); j++ {
		e := entries[j]
		e.Table = uint16(id)
		nv.entries = append(nv.entries, e)
	}
	nv.keyBytes = v.keyBytes
	for _, e := range entries {
		nv.keyBytes += int64(len(e.Key))
	}
	return nv
}

// less is merge order: key ascending, sequence descending (the newest
// version of a key sorts first). Matches mergeiter.Less.
func less(ka []byte, sa uint64, kb []byte, sb uint64) bool {
	if c := codec.Compare(ka, kb); c != 0 {
		return c < 0
	}
	return sa > sb
}

// Collect iterates r and returns its entries in table order (already
// (key asc, seq desc) — tables are individually sorted), with keys copied
// out of the block buffers. The recovery path uses this; the flush path
// collects entries for free while building the table.
func Collect(r *sstable.Reader) ([]Entry, error) {
	entries := make([]Entry, 0, r.Count())
	it := r.NewIterator()
	for ok := it.First(); ok; ok = it.Next() {
		rec := it.Record()
		block, pos := it.Position()
		entries = append(entries, Entry{
			Key:   append([]byte(nil), rec.Key...),
			Seq:   rec.Seq,
			Kind:  rec.Kind,
			Block: int32(block),
			Pos:   int32(pos),
		})
	}
	return entries, it.Err()
}

// search returns the index of the first entry with key >= target (Len if
// none). Entries are (key asc, seq desc), so the hit is the newest
// version of the first matching key — the same record a Seek on the
// replaced k-way merge would surface first.
func (v *View) search(target []byte) int {
	return sort.Search(len(v.entries), func(i int) bool {
		return codec.Compare(v.entries[i].Key, target) >= 0
	})
}

// ---------------------------------------------------------------------------
// Iterator.

// Iter walks a view in entry order. It implements mergeiter.RecIter plus
// Err, so the scan path drops it into the same merge machinery that used
// to hold one iterator per table. Each positioning call materializes the
// current record; Record is then a field read. One parsed block per table
// is cached: a table's entries appear in block order, so the cache turns
// positional access into at most one load per (table, block) pair — the
// same block I/O the per-table iterators performed.
type Iter struct {
	v     *View
	i     int
	rec   record.Record
	valid bool
	err   error

	blocks    []sstable.Block // per-table cached parsed block
	blockIdxs []int32         // which block each cache slot holds (-1 none)
}

// NewIterator returns an iterator positioned before the first entry.
func (v *View) NewIterator() *Iter {
	idxs := make([]int32, len(v.tables))
	for i := range idxs {
		idxs[i] = -1
	}
	return &Iter{v: v, i: -1, blocks: make([]sstable.Block, len(v.tables)), blockIdxs: idxs}
}

// Err returns the first error encountered materializing a record.
func (it *Iter) Err() error { return it.err }

// Valid reports whether the iterator is on a record.
func (it *Iter) Valid() bool { return it.valid }

// Record returns the current record. Key/Seq/Kind come from the entry;
// the value aliases the cached block buffer (immutable, copied by the
// scan before it leaves the engine).
func (it *Iter) Record() record.Record { return it.rec }

// First positions at the first entry.
func (it *Iter) First() bool { return it.goTo(0) }

// Seek positions at the first entry with key >= target.
func (it *Iter) Seek(target []byte) bool { return it.goTo(it.v.search(target)) }

// Next advances to the following entry.
func (it *Iter) Next() bool {
	if it.err != nil {
		return false
	}
	return it.goTo(it.i + 1)
}

// goTo materializes entry i (or exhausts the iterator).
func (it *Iter) goTo(i int) bool {
	if it.err != nil {
		return false
	}
	it.i = i
	if i < 0 || i >= len(it.v.entries) {
		it.valid = false
		return false
	}
	e := &it.v.entries[i]
	if e.Kind == record.KindDelete {
		// Tombstones carry no value: skip the block access entirely (a
		// heavily deleted range scans without touching table blocks).
		it.rec = record.Record{Key: e.Key, Seq: e.Seq, Kind: e.Kind}
		it.valid = true
		return true
	}
	if it.blockIdxs[e.Table] != e.Block {
		b, err := it.v.tables[e.Table].LoadBlock(int(e.Block))
		if err != nil {
			it.err = err
			it.valid = false
			return false
		}
		it.blocks[e.Table] = b
		it.blockIdxs[e.Table] = e.Block
	}
	rec, err := it.blocks[e.Table].RecordAt(int(e.Pos))
	if err != nil {
		it.err = err
		it.valid = false
		return false
	}
	// The entry is authoritative for ordering fields; a cursor pointing at
	// a record with a different key would mean the view and table diverged
	// (never happens: both are immutable). Keep the entry's key — it is
	// arena-owned and outlives block cache eviction.
	rec.Key = e.Key
	it.rec = rec
	it.valid = true
	return true
}
