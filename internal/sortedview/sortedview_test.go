package sortedview

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"unikv/internal/mergeiter"
	"unikv/internal/record"
	"unikv/internal/sstable"
	"unikv/internal/vfs"
)

func buildTable(t *testing.T, fs vfs.FS, name string, recs []record.Record) *sstable.Reader {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	b := sstable.NewBuilder(f, sstable.BuilderOptions{BlockSize: 128})
	for _, r := range recs {
		b.Add(r)
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sstable.Open(rf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// sortRecs orders records in merge order (key asc, seq desc).
func sortRecs(recs []record.Record) {
	sort.Slice(recs, func(i, j int) bool {
		return mergeiter.Less(recs[i].Key, recs[i].Seq, recs[j].Key, recs[j].Seq)
	})
}

// buildView flushes each batch as one table and merges it into the view
// incrementally, mirroring the flush path.
func buildView(t *testing.T, batches [][]record.Record) (*View, []record.Record) {
	t.Helper()
	fs := vfs.NewMem()
	v := New()
	var all []record.Record
	for i, recs := range batches {
		sortRecs(recs)
		r := buildTable(t, fs, fmt.Sprintf("t%03d.sst", i), recs)
		entries, err := Collect(r)
		if err != nil {
			t.Fatal(err)
		}
		v = v.WithTable(r, entries)
		all = append(all, recs...)
	}
	sortRecs(all)
	return v, all
}

func checkIterMatches(t *testing.T, v *View, want []record.Record) {
	t.Helper()
	if v.Len() != len(want) {
		t.Fatalf("view Len=%d want %d", v.Len(), len(want))
	}
	it := v.NewIterator()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		rec := it.Record()
		w := want[i]
		if !bytes.Equal(rec.Key, w.Key) || rec.Seq != w.Seq || rec.Kind != w.Kind || !bytes.Equal(rec.Value, w.Value) {
			t.Fatalf("entry %d: got {%q %d %d %q} want {%q %d %d %q}",
				i, rec.Key, rec.Seq, rec.Kind, rec.Value, w.Key, w.Seq, w.Kind, w.Value)
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("iterated %d entries, want %d", i, len(want))
	}
}

func TestEmptyView(t *testing.T) {
	v := New()
	if v.Len() != 0 || v.NumTables() != 0 {
		t.Fatalf("empty view: Len=%d NumTables=%d", v.Len(), v.NumTables())
	}
	it := v.NewIterator()
	if it.First() || it.Valid() {
		t.Fatal("First on empty view should be invalid")
	}
	if it.Seek([]byte("a")) {
		t.Fatal("Seek on empty view should be invalid")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestSingleTable(t *testing.T) {
	var recs []record.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, record.Record{
			Key:   []byte(fmt.Sprintf("key-%04d", i)),
			Seq:   uint64(i + 1),
			Kind:  record.KindSet,
			Value: []byte(fmt.Sprintf("val-%04d", i)),
		})
	}
	v, want := buildView(t, [][]record.Record{recs})
	if v.NumTables() != 1 {
		t.Fatalf("NumTables=%d", v.NumTables())
	}
	checkIterMatches(t, v, want)
}

func TestIncrementalOverlappingTables(t *testing.T) {
	// Five tables with interleaved and duplicated keys, added one at a time
	// like successive flushes; all versions must survive in merge order.
	rnd := rand.New(rand.NewSource(7))
	var batches [][]record.Record
	seq := uint64(1)
	for b := 0; b < 5; b++ {
		var recs []record.Record
		for i := 0; i < 200; i++ {
			k := rnd.Intn(300) // heavy overlap across batches
			kind := record.KindSet
			if rnd.Intn(8) == 0 {
				kind = record.KindDelete
			}
			rec := record.Record{
				Key:  []byte(fmt.Sprintf("key-%05d", k)),
				Seq:  seq,
				Kind: kind,
			}
			if kind == record.KindSet {
				rec.Value = []byte(fmt.Sprintf("v%d-%d", b, i))
			}
			seq++
			recs = append(recs, rec)
		}
		batches = append(batches, recs)
	}
	v, want := buildView(t, batches)
	if v.NumTables() != 5 {
		t.Fatalf("NumTables=%d", v.NumTables())
	}
	checkIterMatches(t, v, want)
}

func TestSeek(t *testing.T) {
	var batches [][]record.Record
	seq := uint64(1)
	for b := 0; b < 3; b++ {
		var recs []record.Record
		for i := b; i < 90; i += 3 {
			recs = append(recs, record.Record{
				Key:   []byte(fmt.Sprintf("key-%04d", i)),
				Seq:   seq,
				Kind:  record.KindSet,
				Value: []byte(fmt.Sprintf("val-%d", i)),
			})
			seq++
		}
		batches = append(batches, recs)
	}
	v, want := buildView(t, batches)

	for _, target := range []string{"", "key-0000", "key-0044", "key-00441", "key-0089", "key-9999"} {
		it := v.NewIterator()
		ok := it.Seek([]byte(target))
		// Reference: first want entry with key >= target.
		wi := sort.Search(len(want), func(i int) bool {
			return bytes.Compare(want[i].Key, []byte(target)) >= 0
		})
		if wi == len(want) {
			if ok {
				t.Fatalf("Seek(%q): expected exhausted, got %q", target, it.Record().Key)
			}
			continue
		}
		if !ok {
			t.Fatalf("Seek(%q): expected %q, got exhausted", target, want[wi].Key)
		}
		if got := it.Record(); !bytes.Equal(got.Key, want[wi].Key) || got.Seq != want[wi].Seq {
			t.Fatalf("Seek(%q): got {%q %d} want {%q %d}", target, got.Key, got.Seq, want[wi].Key, want[wi].Seq)
		}
		// Walk the tail and verify it matches the reference slice.
		for i := wi; ok; ok = it.Next() {
			got := it.Record()
			if !bytes.Equal(got.Key, want[i].Key) || got.Seq != want[i].Seq || !bytes.Equal(got.Value, want[i].Value) {
				t.Fatalf("Seek(%q) walk at %d: got {%q %d} want {%q %d}", target, i, got.Key, got.Seq, want[i].Key, want[i].Seq)
			}
			i++
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
	}
}

func TestSeekLandsOnNewestVersion(t *testing.T) {
	// Two tables carry the same key; Seek must surface the higher seq first.
	k := []byte("dup-key")
	batches := [][]record.Record{
		{{Key: k, Seq: 1, Kind: record.KindSet, Value: []byte("old")}},
		{{Key: k, Seq: 2, Kind: record.KindSet, Value: []byte("new")}},
	}
	v, _ := buildView(t, batches)
	it := v.NewIterator()
	if !it.Seek(k) {
		t.Fatal("seek failed")
	}
	if got := it.Record(); got.Seq != 2 || !bytes.Equal(got.Value, []byte("new")) {
		t.Fatalf("got seq=%d value=%q, want newest first", got.Seq, got.Value)
	}
	if !it.Next() {
		t.Fatal("expected older version next")
	}
	if got := it.Record(); got.Seq != 1 || !bytes.Equal(got.Value, []byte("old")) {
		t.Fatalf("got seq=%d value=%q, want older second", got.Seq, got.Value)
	}
}

func TestVersionsMonotonic(t *testing.T) {
	v1 := New()
	v2 := New()
	if v2.Version() <= v1.Version() {
		t.Fatalf("versions not increasing: %d then %d", v1.Version(), v2.Version())
	}
	fs := vfs.NewMem()
	r := buildTable(t, fs, "t.sst", []record.Record{
		{Key: []byte("a"), Seq: 1, Kind: record.KindSet, Value: []byte("x")},
	})
	entries, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	v3 := v2.WithTable(r, entries)
	if v3.Version() <= v2.Version() {
		t.Fatalf("WithTable version not increasing: %d then %d", v2.Version(), v3.Version())
	}
	// The old view is untouched by the extension.
	if v2.Len() != 0 || v3.Len() != 1 {
		t.Fatalf("v2.Len=%d v3.Len=%d", v2.Len(), v3.Len())
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	var recs []record.Record
	for i := 0; i < 50; i++ {
		recs = append(recs, record.Record{
			Key:   []byte(fmt.Sprintf("key-%04d", i)),
			Seq:   uint64(i + 1),
			Kind:  record.KindSet,
			Value: []byte("v"),
		})
	}
	v, _ := buildView(t, [][]record.Record{recs})
	if v.MemoryBytes() <= 0 {
		t.Fatalf("MemoryBytes=%d", v.MemoryBytes())
	}
	if New().MemoryBytes() != 0 {
		t.Fatal("empty view should report 0 bytes")
	}
}

// TestAgainstMergeIter cross-checks the view iterator against the k-way
// merge it replaces, over randomized overlapping tables.
func TestAgainstMergeIter(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		fs := vfs.NewMem()
		v := New()
		var readers []*sstable.Reader
		seq := uint64(1)
		nTables := 2 + rnd.Intn(7)
		for b := 0; b < nTables; b++ {
			var recs []record.Record
			n := 20 + rnd.Intn(150)
			for i := 0; i < n; i++ {
				kind := record.KindSet
				if rnd.Intn(10) == 0 {
					kind = record.KindDelete
				}
				rec := record.Record{
					Key:  []byte(fmt.Sprintf("k%06d", rnd.Intn(400))),
					Seq:  seq,
					Kind: kind,
				}
				if kind == record.KindSet {
					rec.Value = []byte(fmt.Sprintf("t%d-%d", b, i))
				}
				seq++
				recs = append(recs, rec)
			}
			sortRecs(recs)
			r := buildTable(t, fs, fmt.Sprintf("x%d-%d.sst", trial, b), recs)
			entries, err := Collect(r)
			if err != nil {
				t.Fatal(err)
			}
			v = v.WithTable(r, entries)
			readers = append(readers, r)
		}

		// Reference: mergeiter over per-table iterators (newest table first
		// is irrelevant — Less breaks ties by seq).
		iters := make([]mergeiter.RecIter, len(readers))
		for i, r := range readers {
			iters[i] = r.NewIterator()
		}
		ref := mergeiter.New(iters)
		got := v.NewIterator()
		okR, okG := ref.First(), got.First()
		n := 0
		for okR && okG {
			rr, gr := ref.Record(), got.Record()
			if !bytes.Equal(rr.Key, gr.Key) || rr.Seq != gr.Seq || rr.Kind != gr.Kind || !bytes.Equal(rr.Value, gr.Value) {
				t.Fatalf("trial %d entry %d: merge {%q %d} view {%q %d}", trial, n, rr.Key, rr.Seq, gr.Key, gr.Seq)
			}
			okR, okG = ref.Next(), got.Next()
			n++
		}
		if okR != okG {
			t.Fatalf("trial %d: iterators exhausted at different points (merge=%v view=%v after %d)", trial, okR, okG, n)
		}
		if got.Err() != nil {
			t.Fatal(got.Err())
		}
	}
}
