// Package unikv is a persistent key-value store implementing UniKV
// (ICDE 2020): unified indexing that combines an in-memory hash index over
// recently written (hot) data with a fully-sorted, KV-separated store for
// cold data, scaled out through dynamic range partitioning.
//
// # Quick start
//
//	db, err := unikv.Open("/tmp/mydb", nil)
//	if err != nil { ... }
//	defer db.Close()
//
//	db.Put([]byte("user:42"), []byte("alice"))
//	v, err := db.Get([]byte("user:42"))
//	kvs, err := db.Scan([]byte("user:"), []byte("user;"), 0)
//
// # Architecture
//
// Writes land in a WAL-protected memtable and flush to the partition's
// UnsortedStore, whose tables are indexed by a lightweight two-level hash
// index (8 bytes per entry) for O(1)-ish point access to hot data. When the
// UnsortedStore reaches its limit it merges into the SortedStore — a single
// fully-sorted run per partition — separating values into append-only value
// logs (partial KV separation) so the merge moves keys, not values. A
// partition that exceeds its size limit splits at its median key into two
// partitions (scale-out instead of LSM levels). Scans merge the tiers by
// smallest-key selection and fetch log-resident values with readahead and a
// parallel worker pool.
//
// # Serving
//
// Beyond the embedded API, the store runs as a network service:
// internal/server wraps a DB in a TCP front end speaking the
// length-prefixed binary protocol of internal/protocol (opcodes GET, PUT,
// DELETE, SCAN, BATCH, STATS, PING), coalescing concurrent writes into
// group commits via Batch.Append + DB.Apply. cmd/unikv-server is the
// daemon; pkg/client is the connection-pooled Go client mirroring this
// package's API. See the README's "Serving" section for a quick start.
package unikv

import (
	"time"

	"unikv/internal/core"
	"unikv/internal/vfs"
)

// ErrNotFound is returned by Get when the key does not exist.
var ErrNotFound = core.ErrNotFound

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = core.ErrClosed

// ErrKeyTooLarge is returned for writes whose key or value exceeds the
// on-disk format limits (64 KiB keys, 1 GiB values).
var ErrKeyTooLarge = core.ErrKeyTooLarge

// ErrDBLocked is returned by Open when another live process already owns
// the database directory (its LOCK file is flock'd). The lock is released
// by Close and dies with the owning process.
var ErrDBLocked = core.ErrDBLocked

// ErrSnapshotOpen is returned by Close while a Snapshot handle is still
// open: tearing down would unmap the tables and value logs the snapshot
// has pinned. Close every Snapshot first.
var ErrSnapshotOpen = core.ErrSnapshotOpen

// ErrSnapshotClosed is returned by reads on a closed Snapshot.
var ErrSnapshotClosed = core.ErrSnapshotClosed

// ErrDegraded matches (via errors.Is) every error returned by writes once
// the database has entered degraded read-only mode: a background
// maintenance job failed terminally — its error classified as corruption,
// or as transient and survived the bounded retries — so writes are
// rejected while reads keep serving the still-consistent on-disk state.
// Metrics reports the mode (Degraded, DegradedSince, DegradedCause);
// reopening the database clears it.
var ErrDegraded = core.ErrDegraded

// ErrPartitionQuarantined matches (via errors.Is) every error returned by
// writes routed to a quarantined partition: corruption was detected in
// that partition's files (by the background scrub or a foreground read),
// so its key range rejects writes while every other partition keeps
// serving reads and writes. Metrics reports the count
// (QuarantinedPartitions); run Repair (or unikv-ctl repair) offline and
// reopen to recover.
var ErrPartitionQuarantined = core.ErrPartitionQuarantined

// ErrorClass partitions engine errors by the recovery action they permit:
// transient errors may succeed when retried, corruption errors mean the
// stored bytes are wrong (retrying is useless), fatal errors are
// deterministic outcomes (closed, locked, degraded, oversized key).
type ErrorClass = core.ErrorClass

// Error classes returned by Classify.
const (
	ClassNone       = core.ClassNone
	ClassTransient  = core.ClassTransient
	ClassCorruption = core.ClassCorruption
	ClassFatal      = core.ClassFatal
)

// Classify derives the ErrorClass of an error returned by this package
// (writes, reads, VerifyIntegrity). Unknown errors classify as transient.
func Classify(err error) ErrorClass { return core.Classify(err) }

// CacheOff disables the block/value read cache when assigned to
// Options.CacheBytes (0 means "use the default size").
const CacheOff = core.CacheOff

// HotRingOff disables the hot-key read layer when assigned to
// Options.HotRingEntries (0 means "use the default size").
const HotRingOff = core.HotRingOff

// KV is one key-value pair returned by Scan.
type KV = core.KV

// Metrics is a snapshot of engine statistics.
type Metrics = core.StatsSnapshot

// Options tunes the store. The zero value (or a nil pointer) selects the
// defaults; every field is optional.
type Options struct {
	// MemtableSize flushes the in-memory write buffer at this many bytes.
	// Default 4 MiB.
	MemtableSize int64
	// UnsortedLimit caps each partition's UnsortedStore (the hash-indexed
	// hot tier); reaching it triggers a merge into the SortedStore.
	// Default 8 × MemtableSize.
	UnsortedLimit int64
	// ScanMergeLimit is the UnsortedStore table count that triggers the
	// size-based merge keeping scans fast. Default 8.
	ScanMergeLimit int
	// PartitionSizeLimit splits a partition beyond this many bytes.
	// Default 8 × UnsortedLimit.
	PartitionSizeLimit int64
	// GCRatio runs value-log garbage collection in a partition once its
	// dead bytes exceed GCRatio of its referenced log bytes. Default 0.3.
	GCRatio float64
	// MaxLogSize rotates value logs at this size. Default 8 MiB.
	MaxLogSize int64
	// SyncWrites fsyncs the WAL on every write. Default false (fsync at
	// memtable flush, like LevelDB's default).
	SyncWrites bool
	// DisableWAL turns off the write-ahead log: unflushed writes are lost
	// on crash.
	DisableWAL bool
	// ScanWorkers sizes the parallel value-fetch pool used by Scan.
	// Default 32.
	ScanWorkers int
	// ValueThreshold keeps values smaller than this many bytes inline in
	// the sorted tier instead of KV-separating them into value logs
	// (selective KV separation — worthwhile for small-KV workloads).
	// 0 separates everything.
	ValueThreshold int
	// BackgroundWorkers moves maintenance (memtable flush, merge, GC,
	// partition split) onto this many background workers: a full memtable
	// is frozen onto an immutable queue — still served by reads — and the
	// writer returns immediately instead of doing the work inline. Writers
	// only slow down or stall when maintenance falls behind. 0 (the
	// default) keeps maintenance inline in the writing goroutine.
	BackgroundWorkers int
	// CacheBytes bounds the in-memory read cache shared by all partitions,
	// holding hot SSTable data blocks and hot value-log entries. The cache
	// is on by default: 0 selects the default size (32 MiB); CacheOff (any
	// negative value) disables caching entirely.
	CacheBytes int64
	// HotRingEntries sizes the hot-key read layer: a sharded, lock-free
	// structure serving the hottest keys in a single memory probe before
	// partition routing (see README "Skewed workloads"). On by default:
	// 0 selects the default size (4096 slots); HotRingOff (any negative
	// value) disables the layer entirely.
	HotRingEntries int
	// HotRingMaxValue caps the value size (bytes) admitted to the hot
	// ring; larger values always take the tiered read path. Default 4096.
	HotRingMaxValue int
	// JobRetries caps how many times a background maintenance job is
	// retried on a transient error before the database enters degraded
	// read-only mode (see ErrDegraded). Corruption is never retried.
	// Default 3; negative disables retries.
	JobRetries int
	// RetryBaseDelay is the first retry's backoff; it doubles per retry
	// (with jitter) up to RetryMaxDelay. Defaults 10ms and 1s.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// ScrubInterval enables the background integrity scrub: every interval
	// the engine re-reads and checksum-verifies every table block and
	// value-log frame, quarantining exactly the partitions whose files turn
	// out corrupt (see ErrPartitionQuarantined) while the rest keep
	// serving. 0 (the default) disables scrubbing entirely.
	ScrubInterval time.Duration
	// ScrubBytesPerSec bounds the scrub's read rate so verification cannot
	// starve foreground I/O. 0 selects the default (8 MiB/s); negative
	// removes the bound.
	ScrubBytesPerSec int64

	// Advanced / experiment knobs. Leave zero unless reproducing the
	// paper's ablations.
	TargetTableSize     int64
	BlockSize           int
	HashBuckets         int
	DisableHashIndex    bool
	DisableKVSeparation bool
	DisablePartitioning bool
	DisableScanMerge    bool
	DisableScanPrefetch bool
	DisableScanParallel bool

	// FS overrides the file system (in-memory testing, I/O accounting).
	FS vfs.FS
}

// toCore maps public options onto the engine's option set.
func (o *Options) toCore() core.Options {
	if o == nil {
		return core.Options{}
	}
	return core.Options{
		MemtableSize:        o.MemtableSize,
		UnsortedLimit:       o.UnsortedLimit,
		ScanMergeLimit:      o.ScanMergeLimit,
		PartitionSizeLimit:  o.PartitionSizeLimit,
		GCRatio:             o.GCRatio,
		MaxLogSize:          o.MaxLogSize,
		TargetTableSize:     o.TargetTableSize,
		BlockSize:           o.BlockSize,
		HashBuckets:         o.HashBuckets,
		ScanWorkers:         o.ScanWorkers,
		ValueThreshold:      o.ValueThreshold,
		BackgroundWorkers:   o.BackgroundWorkers,
		CacheBytes:          o.CacheBytes,
		HotRingEntries:      o.HotRingEntries,
		HotRingMaxValue:     o.HotRingMaxValue,
		JobRetries:          o.JobRetries,
		RetryBaseDelay:      o.RetryBaseDelay,
		RetryMaxDelay:       o.RetryMaxDelay,
		ScrubInterval:       o.ScrubInterval,
		ScrubBytesPerSec:    o.ScrubBytesPerSec,
		SyncWrites:          o.SyncWrites,
		DisableWAL:          o.DisableWAL,
		DisableHashIndex:    o.DisableHashIndex,
		DisableKVSeparation: o.DisableKVSeparation,
		DisablePartitioning: o.DisablePartitioning,
		DisableScanMerge:    o.DisableScanMerge,
		DisableScanPrefetch: o.DisableScanPrefetch,
		DisableScanParallel: o.DisableScanParallel,
		FS:                  o.FS,
	}
}

// DB is a UniKV database handle. It is safe for concurrent use.
type DB struct {
	eng *core.DB
}

// Open opens (creating if necessary) a database rooted at path. A nil opts
// selects defaults.
func Open(path string, opts *Options) (*DB, error) {
	eng, err := core.Open(path, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Put inserts or overwrites key with value.
func (db *DB) Put(key, value []byte) error { return db.eng.Put(key, value) }

// Get returns the value stored for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.eng.Get(key) }

// Delete removes key. Deleting an absent key is not an error.
func (db *DB) Delete(key []byte) error { return db.eng.Delete(key) }

// Scan returns up to limit pairs with start <= key < end in key order.
// A nil end means "no upper bound"; limit <= 0 means "no count bound".
func (db *DB) Scan(start, end []byte, limit int) ([]KV, error) {
	return db.eng.Scan(start, end, limit)
}

// Flush forces buffered writes to disk.
func (db *DB) Flush() error { return db.eng.Flush() }

// Compact drains every partition's hot tier into its sorted tier; useful
// before read-heavy phases and in benchmarks.
func (db *DB) Compact() error { return db.eng.CompactAll() }

// Metrics returns a snapshot of engine statistics.
func (db *DB) Metrics() Metrics { return db.eng.Metrics() }

// Close flushes and releases the database. The handle is unusable after.
func (db *DB) Close() error { return db.eng.Close() }

// Batch collects writes for DB.Apply. Operations landing in the same
// partition are committed with a single WAL record (one fsync under
// SyncWrites) and become durable atomically; a batch that straddles a
// partition boundary commits per-partition, in key order.
type Batch = core.Batch

// NewBatch returns an empty write batch.
func NewBatch() *Batch { return core.NewBatch() }

// Apply applies every operation queued in the batch.
func (db *DB) Apply(b *Batch) error { return db.eng.ApplyBatch(b) }

// VerifyIntegrity re-reads and checksum-verifies every table block and
// value-log record — including the active log's sealed prefix — returning
// the first corruption found (nil when clean).
func (db *DB) VerifyIntegrity() error { return db.eng.VerifyIntegrity() }

// CorruptionReport locates one corrupt file found by VerifyIntegrityReport.
type CorruptionReport = core.CorruptionReport

// VerifyIntegrityReport runs the same verification as VerifyIntegrity but
// keeps going after the first failure, returning every corruption found
// (empty when clean). Verification is read-only: it reports, it does not
// quarantine.
func (db *DB) VerifyIntegrityReport() ([]CorruptionReport, error) {
	return db.eng.VerifyIntegrityReport()
}

// RepairReport is the loss report returned by Repair.
type RepairReport = core.RepairReport

// Repair salvages the database in path offline (the database must not be
// open): torn value-log tails are truncated at the last valid frame,
// unreadable tables are moved into path/lost/, surviving tables are
// rewritten without pointers into lost log bytes, and the manifest is
// rebuilt from what remains. The report enumerates every file dropped and
// the key ranges affected. A nil opts selects defaults (opts matters when
// the database uses a custom FS).
func Repair(path string, opts *Options) (*RepairReport, error) {
	return core.Repair(path, opts.toCore())
}

// Snapshot is a consistent point-in-time read handle: Get and Scan observe
// exactly the writes sequenced at or before NewSnapshot, no matter how many
// writes, flushes, merges, splits, or value-log GCs run afterwards. Safe
// for concurrent use; Close releases the pinned resources, and DB.Close
// fails with ErrSnapshotOpen while any handle is open.
type Snapshot struct {
	s *core.Snapshot
}

// NewSnapshot pins the current state and returns a consistent read handle.
func (db *DB) NewSnapshot() (*Snapshot, error) {
	s, err := db.eng.NewSnapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{s: s}, nil
}

// Seq returns the sequence number the snapshot is pinned to.
func (s *Snapshot) Seq() uint64 { return s.s.Seq() }

// Get returns the value key had at the pinned point, or ErrNotFound.
func (s *Snapshot) Get(key []byte) ([]byte, error) { return s.s.Get(key) }

// Scan returns up to limit pairs with start <= key < end as of the pinned
// point, in key order (same bounds semantics as DB.Scan).
func (s *Snapshot) Scan(start, end []byte, limit int) ([]KV, error) {
	return s.s.Scan(start, end, limit)
}

// Close releases the snapshot's pinned tables and value logs. Idempotent.
func (s *Snapshot) Close() error { return s.s.Close() }

// Backup writes an online point-in-time checkpoint of the database into
// destDir (which must be empty or absent). The result opens as an
// independent database reproducing the backup-time state; writes and
// background maintenance proceed concurrently.
func (db *DB) Backup(destDir string) error { return db.eng.Backup(destDir) }
