package unikv

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"unikv/internal/vfs"
)

func openMem(t *testing.T) *DB {
	t.Helper()
	db, err := Open("db", &Options{
		FS:                 vfs.NewMem(),
		MemtableSize:       4 << 10,
		UnsortedLimit:      16 << 10,
		PartitionSizeLimit: 128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db := openMem(t)
	defer db.Close()

	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("user:%04d", i))
		v := []byte(fmt.Sprintf("profile-%d", i))
		if err := db.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Get([]byte("user:0042"))
	if err != nil || string(got) != "profile-42" {
		t.Fatalf("%q %v", got, err)
	}
	if _, err := db.Get([]byte("user:9999")); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := db.Delete([]byte("user:0042")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("user:0042")); err != ErrNotFound {
		t.Fatalf("after delete: %v", err)
	}
	kvs, err := db.Scan([]byte("user:0100"), []byte("user:0110"), 0)
	if err != nil || len(kvs) != 10 {
		t.Fatalf("scan: %d %v", len(kvs), err)
	}
	for i, kv := range kvs {
		want := fmt.Sprintf("user:%04d", 100+i)
		if string(kv.Key) != want {
			t.Fatalf("scan[%d]=%q want %q", i, kv.Key, want)
		}
	}
}

func TestPublicNilOptionsOnDisk(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Get([]byte("k"))
	if err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("%q %v", got, err)
	}
}

func TestPublicFlushCompactMetrics(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), bytes.Repeat([]byte("x"), 64))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Flushes == 0 || m.Merges == 0 || m.Partitions == 0 {
		t.Fatalf("metrics look empty: %+v", m)
	}
	if m.UnsortedTables != 0 {
		t.Fatalf("Compact left %d unsorted tables", m.UnsortedTables)
	}
	// Everything readable post-compaction.
	for _, i := range []int{0, 500, 1999} {
		if _, err := db.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
}

func TestPublicClosed(t *testing.T) {
	db := openMem(t)
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("%v", err)
	}
}

func TestPublicBatch(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	b := NewBatch()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); err != ErrNotFound {
		t.Fatalf("%v", err)
	}
	if v, err := db.Get([]byte("b")); err != nil || string(v) != "2" {
		t.Fatalf("%q %v", v, err)
	}
}

func TestPublicValueThreshold(t *testing.T) {
	db, err := Open("db2", &Options{
		FS:             vfs.NewMem(),
		MemtableSize:   4 << 10,
		UnsortedLimit:  16 << 10,
		ValueThreshold: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		v := []byte("small")
		if i%3 == 0 {
			v = bytes.Repeat([]byte("big"), 50)
		}
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), v); err != nil {
			t.Fatal(err)
		}
	}
	db.Compact()
	for i := 0; i < 500; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if i%3 == 0 && len(v) != 150 {
			t.Fatalf("key %d: len=%d", i, len(v))
		}
		if i%3 != 0 && string(v) != "small" {
			t.Fatalf("key %d: %q", i, v)
		}
	}
}

// TestOpenLockedDir is the regression test for the PR 3 observed data loss:
// before the LOCK file existed, a second Open of a live directory rotated
// CURRENT to its own manifest generation and its orphan sweep deleted the
// first process's files. Now the second Open must fail with ErrDBLocked
// while the first handle keeps serving, and the directory must remain
// openable — with all data — once the first handle closes.
func TestOpenLockedDir(t *testing.T) {
	cases := []struct {
		name string
		opts func(t *testing.T) (string, *Options)
	}{
		{"mem", func(t *testing.T) (string, *Options) {
			return "db", &Options{FS: vfs.NewMem()}
		}},
		// Default FS: the real flock(2) path.
		{"os", func(t *testing.T) (string, *Options) {
			return t.TempDir(), nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, opts := tc.opts(t)
			db, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}

			if _, err := Open(dir, opts); !errors.Is(err, ErrDBLocked) {
				t.Fatalf("second Open: want ErrDBLocked, got %v", err)
			}

			// The first handle is unharmed: reads and writes still work.
			if got, err := db.Get([]byte("k0100")); err != nil || string(got) != "v100" {
				t.Fatalf("first handle after contended open: %q %v", got, err)
			}
			if err := db.Put([]byte("post-contention"), []byte("ok")); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			// The lock died with the handle; every key survived.
			db2, err := Open(dir, opts)
			if err != nil {
				t.Fatalf("reopen after close: %v", err)
			}
			defer db2.Close()
			for i := 0; i < 200; i++ {
				got, err := db2.Get([]byte(fmt.Sprintf("k%04d", i)))
				if err != nil || string(got) != fmt.Sprintf("v%d", i) {
					t.Fatalf("key %d lost across contended open: %q %v", i, got, err)
				}
			}
			if got, _ := db2.Get([]byte("post-contention")); string(got) != "ok" {
				t.Fatal("post-contention write lost")
			}
		})
	}
}
