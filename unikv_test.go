package unikv

import (
	"bytes"
	"fmt"
	"testing"

	"unikv/internal/vfs"
)

func openMem(t *testing.T) *DB {
	t.Helper()
	db, err := Open("db", &Options{
		FS:                 vfs.NewMem(),
		MemtableSize:       4 << 10,
		UnsortedLimit:      16 << 10,
		PartitionSizeLimit: 128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db := openMem(t)
	defer db.Close()

	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("user:%04d", i))
		v := []byte(fmt.Sprintf("profile-%d", i))
		if err := db.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Get([]byte("user:0042"))
	if err != nil || string(got) != "profile-42" {
		t.Fatalf("%q %v", got, err)
	}
	if _, err := db.Get([]byte("user:9999")); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := db.Delete([]byte("user:0042")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("user:0042")); err != ErrNotFound {
		t.Fatalf("after delete: %v", err)
	}
	kvs, err := db.Scan([]byte("user:0100"), []byte("user:0110"), 0)
	if err != nil || len(kvs) != 10 {
		t.Fatalf("scan: %d %v", len(kvs), err)
	}
	for i, kv := range kvs {
		want := fmt.Sprintf("user:%04d", 100+i)
		if string(kv.Key) != want {
			t.Fatalf("scan[%d]=%q want %q", i, kv.Key, want)
		}
	}
}

func TestPublicNilOptionsOnDisk(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Get([]byte("k"))
	if err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("%q %v", got, err)
	}
}

func TestPublicFlushCompactMetrics(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), bytes.Repeat([]byte("x"), 64))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Flushes == 0 || m.Merges == 0 || m.Partitions == 0 {
		t.Fatalf("metrics look empty: %+v", m)
	}
	if m.UnsortedTables != 0 {
		t.Fatalf("Compact left %d unsorted tables", m.UnsortedTables)
	}
	// Everything readable post-compaction.
	for _, i := range []int{0, 500, 1999} {
		if _, err := db.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
}

func TestPublicClosed(t *testing.T) {
	db := openMem(t)
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("%v", err)
	}
}

func TestPublicBatch(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	b := NewBatch()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); err != ErrNotFound {
		t.Fatalf("%v", err)
	}
	if v, err := db.Get([]byte("b")); err != nil || string(v) != "2" {
		t.Fatalf("%q %v", v, err)
	}
}

func TestPublicValueThreshold(t *testing.T) {
	db, err := Open("db2", &Options{
		FS:             vfs.NewMem(),
		MemtableSize:   4 << 10,
		UnsortedLimit:  16 << 10,
		ValueThreshold: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		v := []byte("small")
		if i%3 == 0 {
			v = bytes.Repeat([]byte("big"), 50)
		}
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), v); err != nil {
			t.Fatal(err)
		}
	}
	db.Compact()
	for i := 0; i < 500; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if i%3 == 0 && len(v) != 150 {
			t.Fatalf("key %d: len=%d", i, len(v))
		}
		if i%3 != 0 && string(v) != "small" {
			t.Fatalf("key %d: %q", i, v)
		}
	}
}
