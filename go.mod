module unikv

go 1.22
