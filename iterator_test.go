package unikv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"unikv/internal/vfs"
)

func TestIteratorFullRange(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	const n = 1000 // > several pages
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	it := db.NewIterator(nil, nil)
	i := 0
	for it.Next() {
		wantK := fmt.Sprintf("k%06d", i)
		if string(it.Key()) != wantK || string(it.Value()) != fmt.Sprintf("v%d", i) {
			t.Fatalf("at %d: %q=%q", i, it.Key(), it.Value())
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != n {
		t.Fatalf("iterated %d of %d", i, n)
	}
	// Exhausted iterator stays exhausted.
	if it.Next() {
		t.Fatal("Next after exhaustion")
	}
}

func TestIteratorBounds(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	it := db.NewIterator([]byte("k0100"), []byte("k0110"))
	var got []string
	for it.Next() {
		got = append(got, string(it.Key()))
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != 10 || got[0] != "k0100" || got[9] != "k0109" {
		t.Fatalf("bounds wrong: %v", got)
	}
}

func TestIteratorEmptyRange(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	db.Put([]byte("a"), []byte("1"))
	it := db.NewIterator([]byte("x"), nil)
	if it.Next() {
		t.Fatal("empty range yielded a pair")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

// TestIteratorPageBoundaryKeys places keys that are prefixes of each other
// around page boundaries (the successor-key resume must not skip or
// duplicate them).
func TestIteratorPageBoundaryKeys(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	var want []string
	// Keys k, k\x00, k\x00\x00 sort adjacently; spread many such triples.
	for i := 0; i < 200; i++ {
		base := fmt.Sprintf("key%04d", i)
		for _, k := range []string{base, base + "\x00", base + "\x00\x00"} {
			db.Put([]byte(k), []byte("v"))
			want = append(want, k)
		}
	}
	it := db.NewIterator(nil, nil)
	i := 0
	for it.Next() {
		if i >= len(want) || string(it.Key()) != want[i] {
			t.Fatalf("at %d: got %q want %q", i, it.Key(), want[i])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("iterated %d of %d", i, len(want))
	}
}

func TestIteratorAcrossSplits(t *testing.T) {
	db, err := Open("db", &Options{
		FS:                 vfs.NewMem(),
		MemtableSize:       2 << 10,
		UnsortedLimit:      8 << 10,
		PartitionSizeLimit: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 3000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("v"), 40))
	}
	if db.Metrics().Partitions < 2 {
		t.Skip("no splits")
	}
	it := db.NewIterator(nil, nil)
	i := 0
	for it.Next() {
		if string(it.Key()) != fmt.Sprintf("k%06d", i) {
			t.Fatalf("at %d: %q", i, it.Key())
		}
		i++
	}
	if i != n || it.Err() != nil {
		t.Fatalf("iterated %d of %d (%v)", i, n, it.Err())
	}
}
