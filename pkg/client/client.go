// Package client is the Go client for a unikv-server: a connection-pooled
// Client whose methods mirror the embedded unikv.DB API (Get, Put,
// Delete, Scan, Apply, Metrics-as-Stats) over the internal/protocol wire
// format.
//
//	c, err := client.Dial("localhost:4090", nil)
//	if err != nil { ... }
//	defer c.Close()
//
//	c.Put([]byte("user:42"), []byte("alice"))
//	v, err := c.Get([]byte("user:42"))     // unikv.ErrNotFound when absent
//	kvs, err := c.Scan([]byte("user:"), []byte("user;"), 0)
//
// The Client is safe for concurrent use: up to PoolSize connections are
// dialed lazily and callers beyond that block until one frees up. Each
// method issues one request/response exchange; the server coalesces
// concurrent writes into group commits, so many goroutines calling Put
// simultaneously is the intended high-throughput shape.
//
// Every exchange runs under a per-operation deadline (RequestTimeout),
// and idempotent operations (Get, Scan, Stats, Ping) are transparently
// retried with backoff after transient connection errors; writes (Put,
// Delete, Apply) never are, because a broken connection leaves their
// outcome unknown. See Options.MaxRetries.
package client

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"unikv"
	"unikv/internal/protocol"
	"unikv/internal/server"
)

// ErrClientClosed is returned by methods called after Close.
var ErrClientClosed = errors.New("client: closed")

// Options tunes the client. The zero value (or nil) selects defaults.
type Options struct {
	// PoolSize caps concurrently open connections. Default 4.
	PoolSize int
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// RequestTimeout bounds one request/response exchange on the wire —
	// the per-operation deadline (each retry attempt gets a fresh one).
	// Default 10s; negative disables the deadline.
	RequestTimeout time.Duration
	// MaxRetries caps automatic retries of idempotent operations (GET,
	// SCAN, STATS, PING) after a transient connection error: a dial
	// failure, or an I/O/framing error that broke the connection (the
	// retry runs on a fresh one). PUT, DELETE, and BATCH are never retried
	// automatically — a broken connection leaves their outcome unknown,
	// and blind re-execution would double-apply against a concurrent
	// writer. Default 2; negative disables retries.
	MaxRetries int
	// RetryBackoff is the first retry's delay; it doubles per retry with
	// jitter. Default 20ms.
	RetryBackoff time.Duration
}

func (o *Options) withDefaults() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.PoolSize <= 0 {
		v.PoolSize = 4
	}
	if v.DialTimeout <= 0 {
		v.DialTimeout = 5 * time.Second
	}
	if v.RequestTimeout == 0 {
		v.RequestTimeout = 10 * time.Second
	} else if v.RequestTimeout < 0 {
		v.RequestTimeout = 0
	}
	if v.MaxRetries == 0 {
		v.MaxRetries = 2
	} else if v.MaxRetries < 0 {
		v.MaxRetries = 0
	}
	if v.RetryBackoff <= 0 {
		v.RetryBackoff = 20 * time.Millisecond
	}
	return v
}

// Client is a pooled connection to one unikv-server.
type Client struct {
	addr string
	opts Options

	idle   chan *wireConn
	sem    chan struct{} // counts live connections
	closed chan struct{}
}

// wireConn is one protocol connection; owned by a single request at a time.
type wireConn struct {
	nc     net.Conn
	buf    []byte // frame scratch, reused across requests
	nextID uint32
}

// Dial creates a Client for addr and verifies connectivity with a PING.
func Dial(addr string, opts *Options) (*Client, error) {
	c := &Client{
		addr:   addr,
		opts:   opts.withDefaults(),
		closed: make(chan struct{}),
	}
	c.idle = make(chan *wireConn, c.opts.PoolSize)
	c.sem = make(chan struct{}, c.opts.PoolSize)
	if err := c.Ping(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// acquire returns an idle connection, dialing a new one when under the
// pool cap, and blocking otherwise until a connection frees up.
func (c *Client) acquire() (*wireConn, error) {
	select {
	case <-c.closed:
		return nil, ErrClientClosed
	case w := <-c.idle:
		return w, nil
	default:
	}
	select {
	case <-c.closed:
		return nil, ErrClientClosed
	case w := <-c.idle:
		return w, nil
	case c.sem <- struct{}{}:
		nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
		if err != nil {
			<-c.sem
			return nil, err
		}
		return &wireConn{nc: nc}, nil
	}
}

// release returns a healthy connection to the pool; a connection that saw
// an I/O or framing error is closed instead (its stream may be
// desynchronized).
func (c *Client) release(w *wireConn, broken bool) {
	select {
	case <-c.closed:
		broken = true
	default:
	}
	if broken {
		w.nc.Close()
		<-c.sem
		return
	}
	c.idle <- w // cap(idle) == cap(sem): never blocks
}

// Close releases the pool. In-flight requests finish on their own
// connections, which are closed on release.
func (c *Client) Close() error {
	select {
	case <-c.closed:
		return nil
	default:
	}
	close(c.closed)
	for {
		select {
		case w := <-c.idle:
			w.nc.Close()
			<-c.sem
		default:
			return nil
		}
	}
}

// exchange sends the frame already staged in w.buf and reads the response
// body for op. The returned response aliases w.buf; callers copy out what
// they keep before releasing the connection.
func (c *Client) exchange(w *wireConn, op protocol.Op, id uint32) (protocol.Response, error) {
	if c.opts.RequestTimeout > 0 {
		w.nc.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	}
	if _, err := w.nc.Write(w.buf); err != nil {
		return protocol.Response{}, fmt.Errorf("client: write %s: %w", op, err)
	}
	var err error
	w.buf, err = protocol.ReadFrame(w.nc, w.buf[:0])
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // mid-request close is never clean
		}
		return protocol.Response{}, fmt.Errorf("client: read %s: %w", op, err)
	}
	resp, err := protocol.DecodeResponse(op, w.buf)
	if err != nil {
		return protocol.Response{}, fmt.Errorf("client: %s response: %w", op, err)
	}
	if resp.ID != id {
		return protocol.Response{}, fmt.Errorf("client: %s response id %d, want %d (stream desynchronized)", op, resp.ID, id)
	}
	return resp, nil
}

// attempt runs one pooled request/response round trip. build appends the
// request frame for the allocated id; handle consumes the response while
// the connection is still held (so it may alias the buffer). transport
// reports whether the failure happened below the protocol — a dial error
// or a broken connection — i.e. whether a retry on a fresh connection
// could succeed.
func (c *Client) attempt(op protocol.Op, build func(buf []byte, id uint32) []byte, handle func(protocol.Response) error) (transport bool, err error) {
	w, err := c.acquire()
	if err != nil {
		return !errors.Is(err, ErrClientClosed), err
	}
	w.nextID++
	id := w.nextID
	w.buf = build(w.buf[:0], id)
	resp, err := c.exchange(w, op, id)
	if err != nil {
		c.release(w, true)
		return true, err
	}
	if err := statusErr(resp); err != nil {
		c.release(w, false)
		return false, err
	}
	err = nil
	if handle != nil {
		err = handle(resp)
	}
	c.release(w, false)
	return false, err
}

// do runs one round trip with no retry — the write path (PUT, DELETE,
// BATCH). A transport error leaves the operation's outcome unknown (the
// server may have committed before the connection died), so re-sending
// could double-apply; the caller decides whether the op is safe to repeat.
func (c *Client) do(op protocol.Op, build func(buf []byte, id uint32) []byte, handle func(protocol.Response) error) error {
	_, err := c.attempt(op, build, handle)
	return err
}

// doIdempotent is do plus bounded retry with exponential backoff and
// jitter after transport errors, safe because the operation (GET, SCAN,
// STATS, PING) does not mutate server state. Each attempt runs on a fresh
// connection with a fresh RequestTimeout deadline; protocol-level errors
// (NotFound, Degraded, ...) are returned immediately.
func (c *Client) doIdempotent(op protocol.Op, build func(buf []byte, id uint32) []byte, handle func(protocol.Response) error) error {
	delay := c.opts.RetryBackoff
	for attempt := 0; ; attempt++ {
		transport, err := c.attempt(op, build, handle)
		if err == nil || !transport || attempt >= c.opts.MaxRetries {
			return err
		}
		d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		select {
		case <-c.closed:
			return err
		case <-time.After(d):
		}
		delay *= 2
	}
}

// statusErr maps wire statuses back onto the unikv error surface.
func statusErr(resp protocol.Response) error {
	switch resp.Status {
	case protocol.StatusOK:
		return nil
	case protocol.StatusNotFound:
		return unikv.ErrNotFound
	case protocol.StatusTooLarge:
		return unikv.ErrKeyTooLarge
	case protocol.StatusClosed:
		return unikv.ErrClosed
	case protocol.StatusDegraded:
		return fmt.Errorf("%w: %s", unikv.ErrDegraded, resp.Msg)
	case protocol.StatusQuarantined:
		return fmt.Errorf("%w: %s", unikv.ErrPartitionQuarantined, resp.Msg)
	default:
		return fmt.Errorf("client: server error %s: %s", resp.Status, resp.Msg)
	}
}

// Ping round-trips an empty frame, verifying the server is reachable.
func (c *Client) Ping() error {
	return c.doIdempotent(protocol.OpPing, protocol.AppendPing, nil)
}

// Get returns the value stored for key, or unikv.ErrNotFound.
func (c *Client) Get(key []byte) ([]byte, error) {
	var v []byte
	err := c.doIdempotent(protocol.OpGet,
		func(buf []byte, id uint32) []byte { return protocol.AppendGet(buf, id, key) },
		func(resp protocol.Response) error {
			v = append([]byte(nil), resp.Value...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Put inserts or overwrites key with value.
func (c *Client) Put(key, value []byte) error {
	return c.do(protocol.OpPut,
		func(buf []byte, id uint32) []byte { return protocol.AppendPut(buf, id, key, value) },
		nil)
}

// Delete removes key. Deleting an absent key is not an error.
func (c *Client) Delete(key []byte) error {
	return c.do(protocol.OpDelete,
		func(buf []byte, id uint32) []byte { return protocol.AppendDelete(buf, id, key) },
		nil)
}

// Scan returns up to limit pairs with start <= key < end in key order,
// mirroring unikv.DB.Scan: a nil end means "no upper bound", limit <= 0
// means "no count bound".
func (c *Client) Scan(start, end []byte, limit int) ([]unikv.KV, error) {
	var kvs []unikv.KV
	err := c.doIdempotent(protocol.OpScan,
		func(buf []byte, id uint32) []byte {
			return protocol.AppendScan(buf, id, start, end, end == nil, limit)
		},
		func(resp protocol.Response) error {
			kvs = make([]unikv.KV, len(resp.Pairs))
			for i, p := range resp.Pairs {
				kvs[i] = unikv.KV{
					Key:   append([]byte(nil), p.Key...),
					Value: append([]byte(nil), p.Value...),
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return kvs, nil
}

// Batch collects writes for Client.Apply. It mirrors unikv.Batch; the
// whole batch is committed atomically within each partition on the
// server, riding the same group-commit path as concurrent Puts.
type Batch struct {
	ops []protocol.BatchOp
}

// NewBatch returns an empty write batch.
func NewBatch() *Batch { return &Batch{} }

// Put queues an insert/overwrite. Key and value are copied.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, protocol.BatchOp{
		Kind:  protocol.BatchPut,
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	})
}

// Delete queues a tombstone. The key is copied.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, protocol.BatchOp{
		Kind: protocol.BatchDelete,
		Key:  append([]byte(nil), key...),
	})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Apply sends the batch as one BATCH request.
func (c *Client) Apply(b *Batch) error {
	return c.do(protocol.OpBatch,
		func(buf []byte, id uint32) []byte { return protocol.AppendBatch(buf, id, b.ops) },
		nil)
}

// Stats fetches one coherent snapshot of the server's serving-layer
// counters and the engine metrics beneath them.
func (c *Client) Stats() (server.Metrics, error) {
	var m server.Metrics
	err := c.doIdempotent(protocol.OpStats, protocol.AppendStats,
		func(resp protocol.Response) error { return m.UnmarshalStats(resp.Stats) })
	return m, err
}
