package client

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unikv"
	"unikv/internal/server"
	"unikv/internal/vfs"
)

// startServer serves a fresh DB on loopback and returns the pieces.
func startServer(t *testing.T, dbOpts *unikv.Options, srvOpts server.Options) (*server.Server, *unikv.DB, string) {
	t.Helper()
	if dbOpts == nil {
		dbOpts = &unikv.Options{FS: vfs.NewMem()}
	}
	db, err := unikv.Open(t.TempDir(), dbOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := server.New(db, srvOpts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, db, ln.Addr().String()
}

func dialClient(t *testing.T, addr string, opts *Options) *Client {
	t.Helper()
	c, err := Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestRoundTrips drives every operation through the full
// client→server→engine path.
func TestRoundTrips(t *testing.T) {
	_, db, addr := startServer(t, nil, server.Options{})
	c := dialClient(t, addr, nil)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// GET of a missing key maps back onto unikv.ErrNotFound.
	if _, err := c.Get([]byte("missing")); !errors.Is(err, unikv.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}

	if err := c.Put([]byte("user:42"), []byte("alice")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("user:42"))
	if err != nil || string(v) != "alice" {
		t.Fatalf("get: %q, %v", v, err)
	}
	// The write went through the real engine underneath.
	if dv, err := db.Get([]byte("user:42")); err != nil || string(dv) != "alice" {
		t.Fatalf("engine get: %q, %v", dv, err)
	}

	// Empty value round-trips as empty, not as not-found.
	if err := c.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get([]byte("empty")); err != nil || len(v) != 0 {
		t.Fatalf("empty value: %q, %v", v, err)
	}

	if err := c.Delete([]byte("user:42")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("user:42")); !errors.Is(err, unikv.ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	// Deleting an absent key is not an error, mirroring DB.Delete.
	if err := c.Delete([]byte("user:42")); err != nil {
		t.Fatal(err)
	}

	// Oversized key maps onto unikv.ErrKeyTooLarge.
	if err := c.Put(make([]byte, 1<<17), []byte("v")); !errors.Is(err, unikv.ErrKeyTooLarge) {
		t.Fatalf("want ErrKeyTooLarge, got %v", err)
	}
}

func TestScan(t *testing.T) {
	_, _, addr := startServer(t, nil, server.Options{})
	c := dialClient(t, addr, nil)

	for i := 0; i < 20; i++ {
		if err := c.Put([]byte(fmt.Sprintf("scan:%03d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Put([]byte("zzz"), []byte("tail")); err != nil {
		t.Fatal(err)
	}

	kvs, err := c.Scan([]byte("scan:"), []byte("scan;"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 20 {
		t.Fatalf("bounded scan: %d pairs, want 20", len(kvs))
	}
	for i, kv := range kvs {
		if want := fmt.Sprintf("scan:%03d", i); string(kv.Key) != want || kv.Value[0] != byte(i) {
			t.Fatalf("pair %d: %q=%v", i, kv.Key, kv.Value)
		}
	}

	// Limit applies.
	kvs, err = c.Scan([]byte("scan:"), []byte("scan;"), 5)
	if err != nil || len(kvs) != 5 {
		t.Fatalf("limited scan: %d pairs, %v", len(kvs), err)
	}

	// nil end scans to the end of the keyspace.
	kvs, err = c.Scan([]byte("scan:015"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 6 || string(kvs[5].Key) != "zzz" {
		t.Fatalf("unbounded scan: %d pairs, last %q", len(kvs), kvs[len(kvs)-1].Key)
	}
}

func TestBatchApply(t *testing.T) {
	_, _, addr := startServer(t, nil, server.Options{})
	c := dialClient(t, addr, nil)

	if err := c.Put([]byte("b:doomed"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	for i := 0; i < 10; i++ {
		b.Put([]byte(fmt.Sprintf("b:%02d", i)), []byte{byte(i)})
	}
	b.Delete([]byte("b:doomed"))
	if b.Len() != 11 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := c.Apply(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v, err := c.Get([]byte(fmt.Sprintf("b:%02d", i)))
		if err != nil || v[0] != byte(i) {
			t.Fatalf("batch key %d: %v %v", i, v, err)
		}
	}
	if _, err := c.Get([]byte("b:doomed")); !errors.Is(err, unikv.ErrNotFound) {
		t.Fatalf("batch delete: %v", err)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not empty the batch")
	}
}

// TestPoolSharing: a pool smaller than the caller count still serves all
// callers (they queue for connections rather than failing).
func TestPoolSharing(t *testing.T) {
	_, _, addr := startServer(t, nil, server.Options{})
	c := dialClient(t, addr, &Options{PoolSize: 2})

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("pool:%d", g))
			if err := c.Put(key, key); err != nil {
				errc <- err
				return
			}
			v, err := c.Get(key)
			if err != nil {
				errc <- err
				return
			}
			if !bytes.Equal(v, key) {
				errc <- fmt.Errorf("pool:%d read %q", g, v)
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestGroupCommitCoalescing is the acceptance check: with >= 8 clients
// issuing concurrent PUTs against a SyncWrites DB, the server must
// coalesce them — strictly fewer DB.Apply group commits than write
// requests, every op accounted for, observed via the Metrics counters.
func TestGroupCommitCoalescing(t *testing.T) {
	// Real files so the WAL fsync in Apply has actual latency for the
	// queue to fill behind; that window is what group commit exploits.
	s, _, addr := startServer(t, &unikv.Options{SyncWrites: true}, server.Options{})

	const clients = 8
	const putsPerClient = 100
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr, &Options{PoolSize: 1})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < putsPerClient; i++ {
				key := []byte(fmt.Sprintf("gc:%d:%04d", g, i))
				if err := c.Put(key, bytes.Repeat([]byte{byte(g)}, 64)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := s.Metrics()
	const writes = clients * putsPerClient
	if m.WriteRequests != writes {
		t.Fatalf("WriteRequests = %d, want %d", m.WriteRequests, writes)
	}
	if m.GroupedOps != writes {
		t.Fatalf("GroupedOps = %d, want %d (no op may be lost or duplicated)", m.GroupedOps, writes)
	}
	if m.GroupCommits >= m.WriteRequests {
		t.Fatalf("no coalescing: %d group commits for %d write requests", m.GroupCommits, m.WriteRequests)
	}
	if m.MaxGroupOps < 2 {
		t.Fatalf("MaxGroupOps = %d, want >= 2", m.MaxGroupOps)
	}
	t.Logf("coalescing: %d write requests -> %d group commits (max group %d)",
		m.WriteRequests, m.GroupCommits, m.MaxGroupOps)

	// Nothing was lost: every acknowledged key is readable.
	c := dialClient(t, addr, nil)
	for g := 0; g < clients; g++ {
		for i := 0; i < putsPerClient; i++ {
			if _, err := c.Get([]byte(fmt.Sprintf("gc:%d:%04d", g, i))); err != nil {
				t.Fatalf("lost gc:%d:%04d: %v", g, i, err)
			}
		}
	}
}

// TestConcurrentSoak hammers the server with mixed GET/PUT/DELETE/SCAN/
// BATCH traffic from many clients; run under -race it doubles as the
// serving path's data-race check. Every client verifies its own keyspace
// at the end (clients don't overlap, so reads are deterministic).
func TestConcurrentSoak(t *testing.T) {
	s, _, addr := startServer(t, nil, server.Options{})

	const clients = 10
	const opsPerClient = 300
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs <- soakOne(addr, g, opsPerClient)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.Requests < clients*opsPerClient {
		t.Fatalf("Requests = %d, want >= %d", m.Requests, clients*opsPerClient)
	}
	if m.InFlight != 0 {
		t.Fatalf("InFlight = %d after quiesce, want 0", m.InFlight)
	}
}

// soakOne runs one client's randomized op mix over its own key range,
// tracking expected contents and verifying at the end.
func soakOne(addr string, g, ops int) error {
	c, err := Dial(addr, &Options{PoolSize: 2})
	if err != nil {
		return err
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(int64(g) + 1))
	expect := map[string][]byte{}
	key := func(i int) []byte { return []byte(fmt.Sprintf("soak:%d:%04d", g, i)) }
	for i := 0; i < ops; i++ {
		k := key(rng.Intn(100))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // put
			v := bytes.Repeat([]byte{byte(rng.Intn(256))}, 1+rng.Intn(128))
			if err := c.Put(k, v); err != nil {
				return fmt.Errorf("client %d put: %w", g, err)
			}
			expect[string(k)] = v
		case 4: // delete
			if err := c.Delete(k); err != nil {
				return fmt.Errorf("client %d delete: %w", g, err)
			}
			delete(expect, string(k))
		case 5: // batch
			b := NewBatch()
			for j := 0; j < 5; j++ {
				bk := key(rng.Intn(100))
				bv := []byte(fmt.Sprintf("batch:%d:%d", i, j))
				b.Put(bk, bv)
				expect[string(bk)] = bv
			}
			if err := c.Apply(b); err != nil {
				return fmt.Errorf("client %d apply: %w", g, err)
			}
		case 6: // scan own range
			prefix := []byte(fmt.Sprintf("soak:%d:", g))
			kvs, err := c.Scan(prefix, []byte(fmt.Sprintf("soak:%d;", g)), 0)
			if err != nil {
				return fmt.Errorf("client %d scan: %w", g, err)
			}
			if len(kvs) != len(expect) {
				return fmt.Errorf("client %d scan: %d pairs, expect %d", g, len(kvs), len(expect))
			}
		default: // get
			v, err := c.Get(k)
			want, ok := expect[string(k)]
			if !ok {
				if !errors.Is(err, unikv.ErrNotFound) {
					return fmt.Errorf("client %d get absent %q: %v", g, k, err)
				}
			} else if err != nil || !bytes.Equal(v, want) {
				return fmt.Errorf("client %d get %q: %q, %v (want %q)", g, k, v, err, want)
			}
		}
	}
	// Final verification of the whole keyspace.
	for ks, want := range expect {
		v, err := c.Get([]byte(ks))
		if err != nil || !bytes.Equal(v, want) {
			return fmt.Errorf("client %d final get %q: %q, %v", g, ks, v, err)
		}
	}
	return nil
}

// TestGracefulShutdownDrain: requests acknowledged before or during Close
// must be durable in the engine; requests after Close fail cleanly; Close
// returns with nothing in flight.
func TestGracefulShutdownDrain(t *testing.T) {
	s, db, addr := startServer(t, nil, server.Options{})

	const clients = 6
	type ack struct {
		g, last int // highest acknowledged sequence per client
	}
	acks := make(chan ack, clients)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr, &Options{PoolSize: 1})
			if err != nil {
				acks <- ack{g, -1}
				return
			}
			defer c.Close()
			last := -1
			for i := 0; ; i++ {
				if stop.Load() && i > 0 {
					break
				}
				key := []byte(fmt.Sprintf("drain:%d:%06d", g, i))
				if err := c.Put(key, []byte("v")); err != nil {
					break // server went away mid-shutdown: expected
				}
				last = i
			}
			acks <- ack{g, last}
		}(g)
	}

	// Let traffic build, then drain.
	time.Sleep(50 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	close(acks)

	// Every acknowledged write is in the engine: an OK response means the
	// group commit completed before the server let the connection go.
	total := 0
	for a := range acks {
		for i := 0; i <= a.last; i++ {
			key := []byte(fmt.Sprintf("drain:%d:%06d", a.g, i))
			if _, err := db.Get(key); err != nil {
				t.Fatalf("acknowledged write %s lost: %v", key, err)
			}
		}
		total += a.last + 1
	}
	if total == 0 {
		t.Fatal("no writes were acknowledged before shutdown; test proved nothing")
	}
	t.Logf("drained cleanly with %d acknowledged writes intact", total)

	if m := s.Metrics(); m.InFlight != 0 {
		t.Fatalf("InFlight = %d after Close, want 0", m.InFlight)
	}

	// New work is refused after Close.
	if _, err := Dial(addr, &Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("Dial after Close should fail")
	}
}

// TestStats: the client's Stats mirrors the server's own snapshot.
func TestStats(t *testing.T) {
	s, _, addr := startServer(t, nil, server.Options{})
	c := dialClient(t, addr, nil)

	for i := 0; i < 5; i++ {
		if err := c.Put([]byte{byte('a' + i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if m.WriteRequests != 5 || m.Engine.Puts != 5 {
		t.Fatalf("stats: %+v", m)
	}
	if m.BytesIn == 0 || m.BytesOut == 0 || m.Requests < 6 {
		t.Fatalf("wire counters missing: %+v", m)
	}
	sm := s.Metrics()
	if sm.WriteRequests != m.WriteRequests {
		t.Fatalf("server and wire snapshots disagree: %+v vs %+v", sm, m)
	}
}

// TestClientClosed: methods after Close fail fast with ErrClientClosed.
func TestClientClosed(t *testing.T) {
	_, _, addr := startServer(t, nil, server.Options{})
	c := dialClient(t, addr, nil)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("want ErrClientClosed, got %v", err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
