package client

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"unikv"
	"unikv/internal/protocol"
	"unikv/internal/server"
	"unikv/internal/vfs"
)

func key(i int) []byte { return []byte{'k', byte(i >> 8), byte(i)} }

// flakyServer is a minimal protocol responder whose connections can be
// made to die mid-request: when failRequests > 0, the next request frame
// is read and the connection closed without a reply — the shape of a
// server restart or a dropped TCP session between request and response.
type flakyServer struct {
	ln           net.Listener
	failRequests atomic.Int32
	frames       atomic.Int32 // request frames read, failed or answered
	value        []byte
}

func startFlaky(t *testing.T) *flakyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &flakyServer{ln: ln, value: []byte("flaky-value")}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(nc)
		}
	}()
	return s
}

func (s *flakyServer) serve(nc net.Conn) {
	defer nc.Close()
	var buf []byte
	for {
		var err error
		buf, err = protocol.ReadFrame(nc, buf[:0])
		if err != nil {
			return
		}
		s.frames.Add(1)
		if s.failRequests.Load() > 0 {
			s.failRequests.Add(-1)
			return // die between request and response
		}
		req, err := protocol.DecodeRequest(buf)
		if err != nil {
			return
		}
		var resp []byte
		if req.Op == protocol.OpGet {
			resp = protocol.AppendOKValue(nil, req.ID, s.value)
		} else {
			resp = protocol.AppendOKEmpty(nil, req.ID)
		}
		if _, err := nc.Write(resp); err != nil {
			return
		}
	}
}

// retryClientOpts pins the retry knobs the tests depend on: one pooled
// connection (so a broken one is visibly replaced) and a fast backoff.
func retryClientOpts() *Options {
	return &Options{
		PoolSize:     1,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	}
}

// TestRetryIdempotent drops the connection under a GET and under the
// Dial-time PING; both must transparently succeed on a fresh connection.
func TestRetryIdempotent(t *testing.T) {
	s := startFlaky(t)

	// Dial-time PING survives a dying first connection.
	s.failRequests.Store(1)
	c, err := Dial(s.ln.Addr().String(), retryClientOpts())
	if err != nil {
		t.Fatalf("Dial through a flaky connection: %v", err)
	}
	defer c.Close()

	// GET: first attempt's connection dies mid-request, the retry answers.
	before := s.frames.Load()
	s.failRequests.Store(1)
	v, err := c.Get([]byte("k"))
	if err != nil {
		t.Fatalf("Get through a flaky connection: %v", err)
	}
	if !bytes.Equal(v, s.value) {
		t.Fatalf("Get = %q, want %q", v, s.value)
	}
	if got := s.frames.Load() - before; got != 2 {
		t.Fatalf("server saw %d GET frames, want 2 (original + one retry)", got)
	}
}

// TestRetryExhausted verifies the retry loop is bounded: with every
// attempt's connection dying, the idempotent op fails after
// 1 + MaxRetries attempts instead of spinning.
func TestRetryExhausted(t *testing.T) {
	s := startFlaky(t)
	c, err := Dial(s.ln.Addr().String(), retryClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := s.frames.Load()
	s.failRequests.Store(100)
	if _, err := c.Get([]byte("k")); err == nil {
		t.Fatal("Get succeeded with every connection dying")
	}
	if got := s.frames.Load() - before; got != 3 {
		t.Fatalf("server saw %d frames, want 3 (original + MaxRetries)", got)
	}
	s.failRequests.Store(0)
}

// TestWritesNeverRetried is the non-idempotence guard: a PUT whose
// connection dies between request and response must surface the error
// after exactly one attempt — the server may have committed it, and a
// blind re-send could double-apply.
func TestWritesNeverRetried(t *testing.T) {
	s := startFlaky(t)
	c, err := Dial(s.ln.Addr().String(), retryClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, tc := range []struct {
		name string
		op   func() error
	}{
		{"put", func() error { return c.Put([]byte("k"), []byte("v")) }},
		{"delete", func() error { return c.Delete([]byte("k")) }},
		{"batch", func() error {
			b := NewBatch()
			b.Put([]byte("k"), []byte("v"))
			return c.Apply(b)
		}},
	} {
		before := s.frames.Load()
		s.failRequests.Store(1)
		if err := tc.op(); err == nil {
			t.Fatalf("%s: no error from a connection that died mid-request", tc.name)
		}
		if got := s.frames.Load() - before; got != 1 {
			t.Fatalf("%s: server saw %d frames, want exactly 1 (writes must not retry)", tc.name, got)
		}
	}
}

// TestDegradedEndToEnd trips the real engine into degraded read-only mode
// behind a real server and checks the full surface: writes come back as
// ErrDegraded (via the distinct wire status, not a generic failure), reads
// keep serving, and STATS carries the degraded flag and cause.
func TestDegradedEndToEnd(t *testing.T) {
	ffs := vfs.NewFail(vfs.NewMem())
	_, _, addr := startServer(t, &unikv.Options{
		FS:                ffs,
		MemtableSize:      2 << 10,
		UnsortedLimit:     8 << 10,
		MaxLogSize:        8 << 10,
		BackgroundWorkers: 2,
		JobRetries:        1,
		RetryBaseDelay:    time.Millisecond,
		RetryMaxDelay:     2 * time.Millisecond,
	}, server.Options{})
	c := dialClient(t, addr, nil)

	if err := c.Put([]byte("pre-fault"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Every sstable write now fails: the first background flush exhausts
	// its retries and degrades the engine.
	ffs.ArmPlan(vfs.FailPlan{Fail: -1, Kinds: vfs.OpWrite, Pattern: "*.sst"})
	var writeErr error
	for i := 0; i < 50000; i++ {
		if writeErr = c.Put(key(i), bytes.Repeat([]byte("v"), 64)); writeErr != nil {
			break
		}
	}
	if writeErr == nil {
		t.Fatal("writes never failed under a sticky background fault")
	}
	if !errors.Is(writeErr, unikv.ErrDegraded) {
		t.Fatalf("client write error %v, want to match unikv.ErrDegraded", writeErr)
	}

	// Reads still serve while degraded.
	if v, err := c.Get([]byte("pre-fault")); err != nil || string(v) != "ok" {
		t.Fatalf("Get while degraded: %q, %v", v, err)
	}
	// STATS carries the mode and its cause to remote operators.
	m, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats while degraded: %v", err)
	}
	if !m.Engine.Degraded || m.Engine.DegradedSince == 0 {
		t.Fatalf("STATS not degraded: %+v", m.Engine)
	}
	if !strings.Contains(m.Engine.DegradedCause, "flush") {
		t.Fatalf("DegradedCause=%q, want the failed job named", m.Engine.DegradedCause)
	}
	ffs.Disarm()
}

// TestQuarantinedEndToEnd trips a partition quarantine through the real
// stack: read-time table corruption behind a real server quarantines the
// owning partition, writes come back matching unikv.ErrPartitionQuarantined
// (via the distinct QUARANTINED wire status), the engine never enters
// whole-DB degraded mode, and STATS carries the quarantined-partition count.
func TestQuarantinedEndToEnd(t *testing.T) {
	ffs := vfs.NewFail(vfs.NewMem())
	_, _, addr := startServer(t, &unikv.Options{
		FS:                ffs,
		MemtableSize:      2 << 10,
		UnsortedLimit:     8 << 10,
		MaxLogSize:        8 << 10,
		BackgroundWorkers: 2,
		JobRetries:        1,
		RetryBaseDelay:    time.Millisecond,
		RetryMaxDelay:     2 * time.Millisecond,
	}, server.Options{})
	c := dialClient(t, addr, nil)

	// Seed until at least one table has been flushed, so reads have
	// on-disk blocks to trip over.
	for i := 0; ; i++ {
		if err := c.Put(key(i%512), bytes.Repeat([]byte("v"), 64)); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			m, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if m.Engine.Flushes > 0 {
				break
			}
		}
		if i > 50000 {
			t.Fatal("no flush after 50k puts")
		}
	}

	// Every table read now returns flipped bytes; a foreground read or a
	// background job finds the corruption and quarantines the partition.
	ffs.ArmCorrupt(vfs.CorruptPlan{Pattern: "*.sst", Start: 0, Stride: 64, Count: 1 << 20})
	var writeErr error
	for i := 0; i < 50000 && writeErr == nil; i++ {
		if i%16 == 0 {
			c.Get(key(i % 512)) // drive foreground reads into the bad blocks
		}
		writeErr = c.Put(key(i%512), bytes.Repeat([]byte("w"), 64))
	}
	if writeErr == nil {
		t.Fatal("writes never failed with every table read corrupted")
	}
	if !errors.Is(writeErr, unikv.ErrPartitionQuarantined) {
		t.Fatalf("client write error %v, want to match unikv.ErrPartitionQuarantined", writeErr)
	}

	m, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats while quarantined: %v", err)
	}
	if m.Engine.QuarantinedPartitions == 0 {
		t.Fatalf("STATS reports no quarantined partitions: %+v", m.Engine)
	}
	if m.Engine.Degraded {
		t.Fatalf("file-scoped corruption degraded the whole DB: %q", m.Engine.DegradedCause)
	}
	ffs.DisarmCorrupt()
}
